//===- SourceManager.h - Source buffers and locations -----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Owns source buffers and maps byte offsets to human-readable line/column
/// positions for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_SOURCEMANAGER_H
#define SUPPORT_SOURCEMANAGER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace nova {

/// A location inside a source buffer, identified by buffer id and byte
/// offset. Offset == ~0u denotes an invalid/unknown location.
struct SourceLoc {
  uint32_t BufferId = 0;
  uint32_t Offset = ~0u;

  bool isValid() const { return Offset != ~0u; }
  static SourceLoc invalid() { return SourceLoc(); }
};

/// A half-open [Begin, End) range of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;
};

/// Line/column pair (both 1-based) resolved from a SourceLoc.
struct LineColumn {
  uint32_t Line = 0;
  uint32_t Column = 0;
};

/// Registry of in-memory source buffers. Buffers are immutable once added.
class SourceManager {
public:
  /// Adds a buffer and returns its id. \p Name is used in diagnostics.
  uint32_t addBuffer(std::string Name, std::string Contents);

  std::string_view bufferName(uint32_t Id) const;
  std::string_view bufferContents(uint32_t Id) const;
  unsigned numBuffers() const { return Buffers.size(); }

  /// Resolves a location to 1-based line and column. Returns {0,0} for an
  /// invalid location.
  LineColumn lineColumn(SourceLoc Loc) const;

  /// Returns the full text of the line containing \p Loc (without the
  /// trailing newline), for use in caret diagnostics.
  std::string_view lineText(SourceLoc Loc) const;

private:
  struct Buffer {
    std::string Name;
    std::string Contents;
    /// Byte offsets of line starts, computed lazily on first query.
    mutable std::vector<uint32_t> LineStarts;
  };

  const Buffer &buffer(uint32_t Id) const;
  static void computeLineStarts(const Buffer &B);

  std::vector<Buffer> Buffers;
};

} // namespace nova

#endif // SUPPORT_SOURCEMANAGER_H
