//===- ThreadPool.cpp -----------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/ThreadPool.h"

#include <algorithm>

using namespace nova;

ThreadPool::ThreadPool(unsigned Threads) : NumWorkers(std::max(1u, Threads)) {
  Helpers.reserve(NumWorkers - 1);
  for (unsigned I = 1; I != NumWorkers; ++I)
    Helpers.emplace_back([this, I] { helperMain(I); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> L(Mu);
    ShuttingDown = true;
  }
  WakeCv.notify_all();
  for (std::thread &T : Helpers)
    T.join();
}

void ThreadPool::runOnWorkers(const std::function<void(unsigned)> &Fn) {
  if (NumWorkers == 1) {
    Fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> L(Mu);
    Job = &Fn;
    Unfinished = NumWorkers - 1;
    ++Generation;
  }
  WakeCv.notify_all();
  Fn(0);
  std::unique_lock<std::mutex> L(Mu);
  DoneCv.wait(L, [&] { return Unfinished == 0; });
  Job = nullptr;
}

void ThreadPool::helperMain(unsigned WorkerId) {
  uint64_t SeenGeneration = 0;
  while (true) {
    const std::function<void(unsigned)> *MyJob = nullptr;
    {
      std::unique_lock<std::mutex> L(Mu);
      WakeCv.wait(L,
                  [&] { return ShuttingDown || Generation != SeenGeneration; });
      if (ShuttingDown)
        return;
      SeenGeneration = Generation;
      MyJob = Job;
    }
    (*MyJob)(WorkerId);
    {
      std::lock_guard<std::mutex> L(Mu);
      if (--Unfinished == 0)
        DoneCv.notify_all();
    }
  }
}

unsigned ThreadPool::defaultThreads() {
  unsigned H = std::thread::hardware_concurrency();
  return H ? H : 1u;
}
