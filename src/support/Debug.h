//===- Debug.h - Assertion and unreachable helpers --------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small debugging helpers shared across all libraries.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_DEBUG_H
#define SUPPORT_DEBUG_H

#include <cstdio>
#include <cstdlib>

namespace nova {

/// Reports an internal error and aborts. Used for code paths that are
/// unconditionally bugs when reached (never for user-input errors).
[[noreturn]] inline void unreachableImpl(const char *Msg, const char *File,
                                         int Line) {
  std::fprintf(stderr, "UNREACHABLE at %s:%d: %s\n", File, Line, Msg);
  std::abort();
}

} // namespace nova

#define NOVA_UNREACHABLE(MSG) ::nova::unreachableImpl(MSG, __FILE__, __LINE__)

#endif // SUPPORT_DEBUG_H
