//===- StringUtils.h - String helpers ---------------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// String formatting and parsing helpers shared across libraries.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STRINGUTILS_H
#define SUPPORT_STRINGUTILS_H

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace nova {

/// Splits \p Text on \p Sep, keeping empty pieces.
std::vector<std::string_view> split(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view Text);

/// Parses a decimal or 0x-prefixed hexadecimal unsigned integer. Returns
/// nullopt on malformed input or overflow of uint64_t.
std::optional<uint64_t> parseInteger(std::string_view Text);

/// printf-style formatting into a std::string.
std::string formatf(const char *Fmt, ...) __attribute__((format(printf, 1, 2)));

/// Joins the elements of \p Parts with \p Sep.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

} // namespace nova

#endif // SUPPORT_STRINGUTILS_H
