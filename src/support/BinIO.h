//===- BinIO.h - Bounds-checked binary serialization ------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-level layer under src/checkpoint: a little-endian append
/// writer, a bounds-checked reader that latches failure instead of
/// reading past the end, and the FNV-1a-64 checksum the checkpoint file
/// format seals payloads with. It lives in support so that sim, fastpath,
/// chip, and soak can each serialize their own state (saveState /
/// restoreState members) without depending on the checkpoint subsystem —
/// checkpoint owns only the file format and directory policy.
///
/// Encoding rules: fixed-width little-endian integers, doubles as their
/// IEEE-754 bit pattern, strings and vectors as a u64 count followed by
/// elements. A reader whose input is truncated or malformed never traps:
/// every accessor returns a zero value once failed() latches, so callers
/// validate once at the end instead of after every field.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_BINIO_H
#define SUPPORT_BINIO_H

#include "support/Status.h"

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace nova {

/// FNV-1a-64 over a byte range, seedable for incremental folding.
inline uint64_t fnv1a64(const void *Data, size_t Len,
                        uint64_t H = 0xcbf29ce484222325ull) {
  const unsigned char *P = static_cast<const unsigned char *>(Data);
  for (size_t I = 0; I != Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

/// Append-only little-endian encoder. Backing storage is a std::string
/// so payloads hand off to file writers without a copy.
class BinWriter {
public:
  void u8(uint8_t V) { Buf.push_back(static_cast<char>(V)); }
  void b(bool V) { u8(V ? 1 : 0); }
  void u32(uint32_t V) {
    for (unsigned I = 0; I != 4; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void u64(uint64_t V) {
    for (unsigned I = 0; I != 8; ++I)
      u8(static_cast<uint8_t>(V >> (8 * I)));
  }
  void f64(double V) {
    uint64_t Bits;
    static_assert(sizeof(Bits) == sizeof(V), "IEEE-754 double expected");
    std::memcpy(&Bits, &V, sizeof(Bits));
    u64(Bits);
  }
  void str(const std::string &S) {
    u64(S.size());
    Buf.append(S);
  }
  void vec32(const std::vector<uint32_t> &V) {
    u64(V.size());
    for (uint32_t X : V)
      u32(X);
  }
  void vec64(const std::vector<uint64_t> &V) {
    u64(V.size());
    for (uint64_t X : V)
      u64(X);
  }

  const std::string &bytes() const { return Buf; }
  std::string take() { return std::move(Buf); }

private:
  std::string Buf;
};

/// Bounds-checked decoder over a byte range the caller keeps alive.
/// Reading past the end (or an element count the remaining bytes cannot
/// hold) latches failed() and yields zero values from then on.
class BinReader {
public:
  BinReader(const void *Data, size_t Len)
      : P(static_cast<const unsigned char *>(Data)), Len(Len) {}
  explicit BinReader(const std::string &S) : BinReader(S.data(), S.size()) {}

  bool failed() const { return Fail; }
  size_t remaining() const { return Len - Pos; }

  uint8_t u8() {
    if (!take(1))
      return 0;
    return P[Pos - 1];
  }
  bool b() { return u8() != 0; }
  uint32_t u32() {
    if (!take(4))
      return 0;
    uint32_t V = 0;
    for (unsigned I = 0; I != 4; ++I)
      V |= static_cast<uint32_t>(P[Pos - 4 + I]) << (8 * I);
    return V;
  }
  uint64_t u64() {
    if (!take(8))
      return 0;
    uint64_t V = 0;
    for (unsigned I = 0; I != 8; ++I)
      V |= static_cast<uint64_t>(P[Pos - 8 + I]) << (8 * I);
    return V;
  }
  double f64() {
    uint64_t Bits = u64();
    double V;
    std::memcpy(&V, &Bits, sizeof(V));
    return V;
  }
  std::string str() {
    uint64_t N = u64();
    if (!take(N))
      return std::string();
    return std::string(reinterpret_cast<const char *>(P + Pos - N),
                       static_cast<size_t>(N));
  }
  std::vector<uint32_t> vec32() {
    uint64_t N = u64();
    if (Fail || N > remaining() / 4) {
      Fail = true;
      return {};
    }
    std::vector<uint32_t> V(static_cast<size_t>(N));
    for (uint64_t I = 0; I != N; ++I)
      V[static_cast<size_t>(I)] = u32();
    return V;
  }
  std::vector<uint64_t> vec64() {
    uint64_t N = u64();
    if (Fail || N > remaining() / 8) {
      Fail = true;
      return {};
    }
    std::vector<uint64_t> V(static_cast<size_t>(N));
    for (uint64_t I = 0; I != N; ++I)
      V[static_cast<size_t>(I)] = u64();
    return V;
  }

private:
  bool take(uint64_t N) {
    if (Fail || N > Len - Pos) {
      Fail = true;
      return false;
    }
    Pos += static_cast<size_t>(N);
    return true;
  }

  const unsigned char *P = nullptr;
  size_t Len = 0;
  size_t Pos = 0;
  bool Fail = false;
};

/// Status round-trip: serialized so an in-flight packet's trap detail
/// survives a checkpoint bit-for-bit (trap messages land in reports).
inline void saveStatus(BinWriter &W, const Status &S) {
  W.u8(static_cast<uint8_t>(S.code()));
  W.u8(static_cast<uint8_t>(S.phase()));
  W.str(S.message());
  W.u64(S.hints().size());
  for (const std::string &H : S.hints())
    W.str(H);
}

inline Status restoreStatus(BinReader &R) {
  uint8_t Code = R.u8();
  uint8_t Ph = R.u8();
  std::string Msg = R.str();
  uint64_t NumHints = R.u64();
  Status S;
  if (Code != static_cast<uint8_t>(StatusCode::Ok))
    S = Status::error(static_cast<StatusCode>(Code), static_cast<Phase>(Ph),
                      std::move(Msg));
  for (uint64_t I = 0; I != NumHints && !R.failed(); ++I)
    S.addHint(R.str());
  return S;
}

} // namespace nova

#endif // SUPPORT_BINIO_H
