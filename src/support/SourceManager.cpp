//===- SourceManager.cpp --------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <algorithm>
#include <cassert>

using namespace nova;

uint32_t SourceManager::addBuffer(std::string Name, std::string Contents) {
  Buffers.push_back(Buffer{std::move(Name), std::move(Contents), {}});
  return static_cast<uint32_t>(Buffers.size() - 1);
}

const SourceManager::Buffer &SourceManager::buffer(uint32_t Id) const {
  assert(Id < Buffers.size() && "invalid buffer id");
  return Buffers[Id];
}

std::string_view SourceManager::bufferName(uint32_t Id) const {
  return buffer(Id).Name;
}

std::string_view SourceManager::bufferContents(uint32_t Id) const {
  return buffer(Id).Contents;
}

void SourceManager::computeLineStarts(const Buffer &B) {
  if (!B.LineStarts.empty())
    return;
  B.LineStarts.push_back(0);
  for (uint32_t I = 0, E = B.Contents.size(); I != E; ++I)
    if (B.Contents[I] == '\n')
      B.LineStarts.push_back(I + 1);
}

LineColumn SourceManager::lineColumn(SourceLoc Loc) const {
  if (!Loc.isValid())
    return {};
  const Buffer &B = buffer(Loc.BufferId);
  computeLineStarts(B);
  uint32_t Off = std::min<uint32_t>(Loc.Offset, B.Contents.size());
  auto It = std::upper_bound(B.LineStarts.begin(), B.LineStarts.end(), Off);
  uint32_t LineIdx = static_cast<uint32_t>(It - B.LineStarts.begin()) - 1;
  return {LineIdx + 1, Off - B.LineStarts[LineIdx] + 1};
}

std::string_view SourceManager::lineText(SourceLoc Loc) const {
  if (!Loc.isValid())
    return {};
  const Buffer &B = buffer(Loc.BufferId);
  computeLineStarts(B);
  LineColumn LC = lineColumn(Loc);
  uint32_t Start = B.LineStarts[LC.Line - 1];
  uint32_t End = LC.Line < B.LineStarts.size() ? B.LineStarts[LC.Line] - 1
                                               : B.Contents.size();
  return std::string_view(B.Contents).substr(Start, End - Start);
}
