//===- ThreadPool.h - Persistent worker-thread pool -------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size pool of persistent worker threads dispatched in rounds:
/// runOnWorkers(Fn) runs Fn(WorkerId) once on every worker concurrently and
/// returns when all calls have finished. Workers are identified by a stable
/// index in [0, size()), so callers can keep per-worker state (a warm
/// simplex basis, a private DFS deque) alive across rounds — which is what
/// the parallel branch-and-bound engine in src/ilp needs.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_THREADPOOL_H
#define SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace nova {

class ThreadPool {
public:
  /// Spawns Threads-1 helper threads; the calling thread acts as worker 0,
  /// so a pool of size 1 never context-switches.
  explicit ThreadPool(unsigned Threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned size() const { return NumWorkers; }

  /// Runs Fn(WorkerId) concurrently on every worker and blocks until all
  /// calls return. Fn must be safe to call from multiple threads at once.
  void runOnWorkers(const std::function<void(unsigned)> &Fn);

  /// Thread count to substitute for a "0 = auto" knob: the hardware
  /// concurrency, clamped to at least 1.
  static unsigned defaultThreads();

private:
  void helperMain(unsigned WorkerId);

  unsigned NumWorkers = 1;
  std::vector<std::thread> Helpers;

  std::mutex Mu;
  std::condition_variable WakeCv, DoneCv;
  const std::function<void(unsigned)> *Job = nullptr;
  uint64_t Generation = 0;
  unsigned Unfinished = 0;
  bool ShuttingDown = false;
};

} // namespace nova

#endif // SUPPORT_THREADPOOL_H
