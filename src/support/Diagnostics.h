//===- Diagnostics.h - Compiler diagnostics ---------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Diagnostic engine that collects errors and warnings with source
/// locations. User-input errors are reported through this engine rather
/// than with exceptions or asserts.
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_DIAGNOSTICS_H
#define SUPPORT_DIAGNOSTICS_H

#include "support/SourceManager.h"

#include <string>
#include <vector>

namespace nova {

enum class DiagKind { Error, Warning, Note };

/// A single diagnostic message anchored at a source location.
struct Diagnostic {
  DiagKind Kind = DiagKind::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics emitted during a compilation. The engine never
/// terminates the process; callers check hasErrors() at phase boundaries.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// Renders all diagnostics as "file:line:col: kind: message" lines with a
  /// source-line excerpt and caret, suitable for printing to stderr.
  std::string render() const;

private:
  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace nova

#endif // SUPPORT_DIAGNOSTICS_H
