//===- Status.h - Structured pipeline status/diagnostics --------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured error propagation for the compiler back end. Where the
/// DiagnosticEngine reports *user-input* errors anchored at source
/// locations, Status describes *pipeline* outcomes: which phase failed,
/// with which machine-checkable code, and what the caller (or the user)
/// can do about it. It replaces the ad-hoc `std::string Error` plumbing
/// between the ILP solver, the allocator, and the driver, and is the
/// vocabulary the graceful-degradation ladder uses to decide whether a
/// failure is recoverable (budget exhausted, numerical trouble) or
/// structural (model construction, verification).
///
//===----------------------------------------------------------------------===//

#ifndef SUPPORT_STATUS_H
#define SUPPORT_STATUS_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace nova {

/// Machine-checkable failure categories. Codes are stable identifiers
/// (tests and scripts match on them), messages are for humans.
enum class StatusCode : uint8_t {
  Ok,
  InvalidArgument,    ///< caller handed the phase something malformed
  ModelBuildFailed,   ///< ILP model construction failed (see diagnostics)
  IlpInfeasible,      ///< no integer point exists for the model
  IlpBudgetExceeded,  ///< time/node budget exhausted without a usable point
  IlpNonOptimal,      ///< a feasible incumbent exists but was not proved
                      ///< optimal (rejected under a strict policy)
  LpNumericalTrouble, ///< the LP engine lost numerical soundness
  ExtractFailed,      ///< solution extraction / register assignment failed
  VerifyFailed,       ///< the legality verifier rejected the emitted code
  BaselineFailed,     ///< the last-resort heuristic allocator failed
  IoError,            ///< file system trouble in the driver
  SimTrap,            ///< the micro-engine runtime trapped (sim::TrapKind
                      ///< carries the taxonomy; this code carries it
                      ///< through Status-typed plumbing)
  Internal,           ///< invariant violation; always a bug
  CheckpointCorrupt,  ///< checkpoint failed its checksum / framing checks
                      ///< (truncated tail, bit flip, bad magic/version)
  CheckpointMismatch  ///< a structurally valid checkpoint belongs to a
                      ///< different invocation (seed, app, exec mode,
                      ///< topology, fault schedule, or code hash differ)
};

/// Pipeline phase that produced a Status (coarser than source locations:
/// these name recovery boundaries, not lines).
enum class Phase : uint8_t {
  Driver,
  Frontend,
  ModelBuild,
  Solve,
  Extract,
  Verify,
  Baseline,
  Execute ///< running compiled code on the micro-engine runtime
};

const char *statusCodeName(StatusCode C);
const char *phaseName(Phase P);

/// Outcome of a pipeline phase: Ok, or a (code, phase, message) triple
/// with optional recovery hints. Cheap to move, renderable for humans,
/// and comparable by code for policy decisions.
class Status {
public:
  /// Default-constructed Status is success.
  Status() = default;

  static Status error(StatusCode C, Phase P, std::string Message) {
    Status S;
    S.ErrCode = C;
    S.ErrPhase = P;
    S.Msg = std::move(Message);
    return S;
  }

  bool ok() const { return ErrCode == StatusCode::Ok; }
  StatusCode code() const { return ErrCode; }
  Phase phase() const { return ErrPhase; }
  const std::string &message() const { return Msg; }
  const std::vector<std::string> &hints() const { return Hints; }

  /// Appends a recovery hint ("rerun with --on-ilp-failure=baseline").
  /// Chainable on both lvalues and temporaries.
  Status &addHint(std::string Hint) & {
    Hints.push_back(std::move(Hint));
    return *this;
  }
  Status &&addHint(std::string Hint) && {
    Hints.push_back(std::move(Hint));
    return std::move(*this);
  }

  /// "phase: code: message" plus one indented "hint:" line per hint;
  /// "ok" for success. Multi-line, no trailing newline.
  std::string render() const;

private:
  StatusCode ErrCode = StatusCode::Ok;
  Phase ErrPhase = Phase::Driver;
  std::string Msg;
  std::vector<std::string> Hints;
};

/// Streams render(); lets gtest print a Status on assertion failure.
std::ostream &operator<<(std::ostream &OS, const Status &S);

} // namespace nova

#endif // SUPPORT_STATUS_H
