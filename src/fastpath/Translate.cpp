//===- Translate.cpp - AllocatedProgram -> flat pre-decoded op stream -----===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// One pass per block, stopping at the first terminal instruction (branch,
// jump, halt, clone pseudo, invalid memory space): everything past it is
// unreachable — blocks have a single entry and execute linearly. Ops past
// the terminal therefore never inflate the block's watchdog bound. Blocks
// that contain a statically illegal register operand are pinned to the
// per-instruction slow path (Meta.ForceSlow): the Err-latch timing of the
// interpreter is observable (which instruction traps, whether a memory
// charge lands first), so those blocks keep the interpreter's exact
// step-by-step schedule. Real allocator output never contains them; the
// hostile hand-built programs in the test suite do.
//
// Branch edges to invalid blocks resolve to appendix trap ops that carry
// the branch's own cold data and a pre-formatted message — the taken-edge
// check costs nothing at runtime.
//
// Superblocks (TranslateOptions::Superblocks, on by default): after the
// per-block pass, single-predecessor chains of non-ForceSlow blocks are
// re-emitted as one linear stream headed by a SuperEntry gate. Interior
// jumps vanish (their instruction+branch cost folds into the cumulative
// cold bases), interior branches become Guard side-exits, and every op's
// cold data is cumulative from the superblock entry, so any exit still
// reconstructs exact interpreter counts. The per-block streams survive
// unchanged — they are the watchdog/slow-path fallback and the target of
// edges into chain interiors. Predecessor counts include a virtual edge
// into the program entry, which is exactly what keeps a chain from being
// extended *into* the entry block.
//
//===----------------------------------------------------------------------===//

#include "fastpath/FastPath.h"

#include "sim/SimUtil.h"
#include "support/StringUtils.h"

#include <map>

using namespace nova;
using namespace nova::fastpath;
using namespace nova::sim::detail;
using alloc::AllocInstr;
using alloc::AOperand;
using alloc::PhysLoc;
using ixp::MOp;

namespace {

/// Frame base of a bank, or -1 for banks with no register file (M, C).
int bankBase(ixp::Bank B) {
  switch (B) {
  case ixp::Bank::A:  return 0;
  case ixp::Bank::B:  return 16;
  case ixp::Bank::L:  return 32;
  case ixp::Bank::S:  return 40;
  case ixp::Bank::LD: return 48;
  case ixp::Bank::SD: return 56;
  default:            return -1;
  }
}

unsigned bankSize(ixp::Bank B) {
  return B == ixp::Bank::A || B == ixp::Bank::B ? 16 : 8;
}

int regSlot(PhysLoc L) {
  int Base = bankBase(L.B);
  if (Base < 0 || L.Reg >= bankSize(L.B))
    return -1;
  return Base + L.Reg;
}

/// True when \p I ends the block's linear execution unconditionally.
bool isTerminal(const AllocInstr &I) {
  if (I.Op == MOp::Branch || I.Op == MOp::Jump || I.Op == MOp::Halt ||
      I.Op == MOp::Clone)
    return true;
  // An invalid memory space traps before operands are read.
  if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
       I.Op == MOp::BitTestSet) &&
      !validSpace(I.Space))
    return true;
  return false;
}

struct Translator {
  const alloc::AllocatedProgram &P;
  const sim::LatencyModel &Lat;
  const TranslateOptions &Options;
  Translated T;
  std::map<uint32_t, uint16_t> ConstSlots;

  /// Pending branch/jump/guard edges: resolved to op indices once every
  /// block has its entry ops placed.
  struct Edge {
    enum Kind : uint8_t { KBranch, KJump, KGuard };
    uint32_t OpIdx;
    uint32_t Block;   ///< block the branch/jump lives in (for messages)
    Kind K;
  };
  std::vector<Edge> Edges;

  Translator(const alloc::AllocatedProgram &Prog, const sim::LatencyModel &L,
             const TranslateOptions &O)
      : P(Prog), Lat(L), Options(O) {}

  uint16_t constSlot(uint32_t V) {
    auto It = ConstSlots.find(V);
    if (It != ConstSlots.end())
      return It->second;
    uint16_t S = static_cast<uint16_t>(FrameRegs + T.Consts.size());
    ConstSlots.emplace(V, S);
    T.Consts.push_back(V);
    return S;
  }

  int srcSlot(const AOperand &O) {
    return O.IsConst ? constSlot(O.Value) : regSlot(O.Loc);
  }

  uint32_t message(std::string M) {
    T.Messages.push_back(std::move(M));
    return static_cast<uint32_t>(T.Messages.size() - 1);
  }

  /// Index of the last emitted op while it is still a fusion candidate
  /// (a Copy or AluShl with nothing emitted after it), else -1.
  int Pending = -1;

  void emit(const FastOp &O, const ColdInfo &C) {
    Pending = -1;
    T.Ops.push_back(O);
    T.Cold.push_back(C);
  }

  /// Emission with pairwise fusion: two stream-adjacent simple ops
  /// collapse into one dispatch. Legal because interior op indices are
  /// never control-flow targets (all transfers land on BlockEntry/
  /// SuperEntry or appendix traps) and interior ops touch no counters —
  /// cold data reconstructs exact counts at exits either way. The fused
  /// handlers perform both writes in program order, so the pair stays
  /// exact even when the second op reads or overwrites the first's
  /// destination. Pending survives a superblock's interior jump on
  /// purpose: the stream is linear across that boundary too.
  void emitFusible(const FastOp &O, const ColdInfo &C) {
    if (Pending >= 0) {
      FastOp &Pr = T.Ops[static_cast<size_t>(Pending)];
      bool SecondIsAlu = O.Kind >= FOp::AluAdd && O.Kind <= FOp::AluNot;
      if (Pr.Kind == FOp::Copy && (SecondIsAlu || O.Kind == FOp::Copy)) {
        FastOp N = O;
        N.Kind = O.Kind == FOp::Copy
                     ? FOp::FuseCopyCopy
                     : static_cast<FOp>(
                           static_cast<unsigned>(FOp::FuseCopyAdd) +
                           (static_cast<unsigned>(O.Kind) -
                            static_cast<unsigned>(FOp::AluAdd)));
        N.X = Pr.D; // copy destination
        N.Y = Pr.A; // copy source
        Pr = N;
        ++T.FusedOps;
        Pending = -1;
        return;
      }
      // A copy staging a memory op's address or data: the mem op's B and
      // D fields are free, and its cold data moves onto the fused op —
      // unlike pure-ALU fusions it can trap and (in SegmentContext)
      // yield, and both read ColdA at the op's own index.
      if (Pr.Kind == FOp::Copy &&
          (O.Kind == FOp::MemRead || O.Kind == FOp::MemWrite)) {
        FastOp N = O;
        N.Kind = O.Kind == FOp::MemRead ? FOp::FuseCopyMemRead
                                        : FOp::FuseCopyMemWrite;
        N.B = Pr.A; // copy source
        N.D = Pr.D; // copy destination
        Pr = N;
        T.Cold[static_cast<size_t>(Pending)] = C;
        ++T.FusedOps;
        Pending = -1;
        return;
      }
      // Address idiom: the shifted value feeds exactly one add operand
      // and dies into the add's destination, so it needs no frame slot.
      if (Pr.Kind == FOp::AluShl && O.Kind == FOp::AluAdd && O.D == Pr.D &&
          ((O.A == Pr.D) != (O.B == Pr.D))) {
        FastOp N;
        N.Kind = FOp::FuseShlAdd;
        N.A = Pr.A;
        N.B = Pr.B;
        N.D = O.D;
        N.X = O.A == Pr.D ? O.B : O.A; // the add's other operand
        Pr = N;
        ++T.FusedOps;
        Pending = -1;
        return;
      }
    }
    int Idx = static_cast<int>(T.Ops.size());
    emit(O, C);
    if (O.Kind == FOp::Copy || O.Kind == FOp::AluShl)
      Pending = Idx;
  }

  /// True when every register operand \p I names exists (constants are
  /// always fine). Terminal-before-read cases never reach here.
  bool operandsLegal(const AllocInstr &I) {
    for (const AOperand &S : I.Srcs)
      if (!S.IsConst && regSlot(S.Loc) < 0)
        return false;
    for (PhysLoc D : I.Dsts)
      if (regSlot(D) < 0)
        return false;
    return true;
  }

  unsigned costOf(const AllocInstr &I) const {
    switch (I.Op) {
    case MOp::Alu:
    case MOp::Move:
      return Lat.Alu;
    case MOp::Imm:
      // Large constants need two instructions on the IXP (paper §12).
      return I.Imm <= 0xFFFF || (I.Imm & 0xFFFF) == 0 ? Lat.Imm
                                                      : Lat.Imm + 1;
    case MOp::Hash:
      return Lat.HashOp;
    default:
      // Memory ops charge their flat cost at runtime (FastOp::Y) so the
      // stream stays resumable; Branch/Jump charge at the exit op;
      // Halt/Clone charge 0.
      return 0;
    }
  }

  /// Decodes a non-terminal instruction into a FastOp. Terminals and
  /// invalid-space memory ops never reach here; operands are legal (the
  /// block passed the pre-scan).
  FastOp decodeSimple(const AllocInstr &I) {
    FastOp O;
    switch (I.Op) {
    case MOp::Alu:
      O.Kind = static_cast<FOp>(static_cast<unsigned>(FOp::AluAdd) +
                                static_cast<unsigned>(I.Alu));
      O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
      O.B = static_cast<uint16_t>(
          I.Srcs.size() > 1 ? srcSlot(I.Srcs[1]) : constSlot(0));
      O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
      break;
    case MOp::Imm:
      O.Kind = FOp::Copy;
      O.A = constSlot(I.Imm);
      O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
      break;
    case MOp::Move:
      O.Kind = FOp::Copy;
      O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
      O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
      break;
    case MOp::Hash:
      O.Kind = FOp::Hash;
      O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
      O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
      break;
    case MOp::MemRead:
      O.Kind = FOp::MemRead;
      O.Aux = static_cast<uint8_t>(I.Space);
      O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
      O.N = static_cast<uint32_t>(I.Dsts.size());
      O.X = static_cast<uint32_t>(T.Pool.size());
      O.Y = Lat.memAccess(I.Space);
      for (PhysLoc D : I.Dsts)
        T.Pool.push_back(static_cast<uint16_t>(regSlot(D)));
      break;
    case MOp::MemWrite:
      O.Kind = FOp::MemWrite;
      O.Aux = static_cast<uint8_t>(I.Space);
      O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
      O.N = static_cast<uint32_t>(I.Srcs.size() - 1);
      O.X = static_cast<uint32_t>(T.Pool.size());
      O.Y = Lat.memAccess(I.Space);
      for (size_t S = 1; S != I.Srcs.size(); ++S)
        T.Pool.push_back(static_cast<uint16_t>(srcSlot(I.Srcs[S])));
      break;
    case MOp::BitTestSet:
      O.Kind = FOp::BitTestSet;
      O.Aux = static_cast<uint8_t>(I.Space);
      O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
      O.B = static_cast<uint16_t>(srcSlot(I.Srcs[1]));
      O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
      O.Y = Lat.memAccess(I.Space);
      break;
    default:
      break; // unreachable: terminals handled by callers
    }
    return O;
  }

  void translateBlock(uint32_t B) {
    const std::vector<AllocInstr> &Instrs = P.Blocks[B].Instrs;
    BlockMeta &M = T.Meta[B];
    M.FirstOp = static_cast<uint32_t>(T.Ops.size());

    FastOp Entry;
    Entry.Kind = FOp::BlockEntry;
    Entry.X = B;
    emit(Entry, {});

    // Legality pre-scan: one statically illegal register pins the whole
    // block to the slow path (the Err latch makes per-instruction timing
    // observable from the first instruction that touches it).
    for (const AllocInstr &I : Instrs) {
      bool Terminal = isTerminal(I);
      bool ReadsOperands =
          I.Op != MOp::Clone &&
          !((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
             I.Op == MOp::BitTestSet) &&
            !validSpace(I.Space));
      if (ReadsOperands && !operandsLegal(I)) {
        M.ForceSlow = true;
        ++T.SlowBlocks;
        M.MaxPath = static_cast<uint32_t>(Instrs.size()) + 1;
        return;
      }
      if (Terminal)
        break;
    }

    uint32_t CycPrefix = 0;
    for (uint32_t K = 0; K != Instrs.size(); ++K) {
      const AllocInstr &I = Instrs[K];
      ColdInfo C{K + 1, CycPrefix};
      FastOp O;

      if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
           I.Op == MOp::BitTestSet) &&
          !validSpace(I.Space)) {
        O.Kind = FOp::TrapStatic;
        O.Aux = static_cast<uint8_t>(sim::TrapKind::IllegalMemSpace);
        O.X = message(
            formatf("memory space %u in block b%u", (unsigned)I.Space, B));
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      }

      switch (I.Op) {
      case MOp::Clone:
        O.Kind = FOp::TrapStatic;
        O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
        O.X = message("clone pseudo in allocated code");
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      case MOp::Branch:
        O.Kind = static_cast<FOp>(static_cast<unsigned>(FOp::BranchEq) +
                                  static_cast<unsigned>(I.Cmp));
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.B = static_cast<uint16_t>(srcSlot(I.Srcs[1]));
        O.X = I.Target;     // block ids until the patch pass
        O.Y = I.TargetElse;
        Edges.push_back(
            {static_cast<uint32_t>(T.Ops.size()), B, Edge::KBranch});
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      case MOp::Jump:
        O.Kind = FOp::Jump;
        O.X = I.Target;
        Edges.push_back(
            {static_cast<uint32_t>(T.Ops.size()), B, Edge::KJump});
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      case MOp::Halt:
        O.Kind = FOp::Halt;
        O.N = static_cast<uint32_t>(I.Srcs.size());
        O.X = static_cast<uint32_t>(T.Pool.size());
        for (const AOperand &S : I.Srcs)
          T.Pool.push_back(static_cast<uint16_t>(srcSlot(S)));
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      default:
        emitFusible(decodeSimple(I), C);
        CycPrefix += costOf(I);
        break;
      }
    }

    // Fell off the end: one more instruction fetch, then the trap.
    FastOp O;
    O.Kind = FOp::TrapStatic;
    O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
    O.X = message(formatf("fell off the end of block b%u", B));
    emit(O, {static_cast<uint32_t>(Instrs.size()) + 1, CycPrefix});
    M.MaxPath = static_cast<uint32_t>(Instrs.size()) + 1;
  }

  /// The first terminal instruction of \p B, or null when the block
  /// falls off its end.
  const AllocInstr *terminalOf(uint32_t B) const {
    for (const AllocInstr &I : P.Blocks[B].Instrs)
      if (isTerminal(I))
        return &I;
    return nullptr;
  }

  /// Superblock formation: collapse single-predecessor chains into one
  /// linear stream with cumulative cold data and Guard side-exits. Every
  /// block keeps its standalone stream; Meta.EnterOp redirects resolved
  /// edges at chain heads into the superblock.
  void buildSuperblocks() {
    const uint32_t N = static_cast<uint32_t>(P.Blocks.size());
    std::vector<uint32_t> Pred(N, 0);
    if (T.EntryValid)
      ++Pred[P.Entry]; // virtual edge: keeps chains out of the entry
    for (uint32_t B = 0; B != N; ++B) {
      const AllocInstr *I = terminalOf(B);
      if (!I)
        continue;
      if (I->Op == MOp::Jump) {
        if (I->Target < N)
          ++Pred[I->Target];
      } else if (I->Op == MOp::Branch) {
        // Target == TargetElse counts twice on purpose: a degenerate
        // guard (exit == continue) is never worth forming.
        if (I->Target < N)
          ++Pred[I->Target];
        if (I->TargetElse < N)
          ++Pred[I->TargetElse];
      }
    }

    std::vector<uint8_t> InChain(N, 0);
    auto eligible = [&](uint32_t S, uint32_t Head) {
      return S < N && S != Head && !InChain[S] && !T.Meta[S].ForceSlow &&
             Pred[S] == 1;
    };
    for (uint32_t B = 0; B != N; ++B) {
      if (InChain[B] || T.Meta[B].ForceSlow)
        continue;
      std::vector<uint32_t> Chain{B};
      uint32_t Cur = B;
      while (Chain.size() < Options.MaxChain) {
        const AllocInstr *I = terminalOf(Cur);
        uint32_t Next = ixp::NoBlock;
        if (I && I->Op == MOp::Jump && eligible(I->Target, B)) {
          Next = I->Target;
        } else if (I && I->Op == MOp::Branch) {
          if (eligible(I->Target, B))
            Next = I->Target;
          else if (eligible(I->TargetElse, B))
            Next = I->TargetElse;
        }
        if (Next == ixp::NoBlock)
          break;
        Chain.push_back(Next);
        InChain[Next] = 1;
        Cur = Next;
      }
      if (Chain.size() < 2)
        continue;
      InChain[B] = 1;
      emitSuperblock(Chain);
    }
  }

  void emitSuperblock(const std::vector<uint32_t> &Chain) {
    uint32_t EntryIdx = static_cast<uint32_t>(T.Ops.size());
    uint64_t CumPath = 0;
    for (uint32_t B : Chain)
      CumPath += T.Meta[B].MaxPath;

    FastOp E;
    E.Kind = FOp::SuperEntry;
    E.X = Chain.front();
    E.Y = static_cast<uint32_t>(CumPath);
    emit(E, {});

    // Cumulative bases: instructions retired and cycles charged by the
    // chain *before* the current block (memory-op costs excluded — they
    // accrue into the runtime cycle base as the ops execute).
    uint32_t InsBase = 0, CycBase = 0;
    for (size_t J = 0; J != Chain.size(); ++J) {
      uint32_t B = Chain[J];
      bool Last = J + 1 == Chain.size();
      uint32_t NextB = Last ? ixp::NoBlock : Chain[J + 1];
      const std::vector<AllocInstr> &Instrs = P.Blocks[B].Instrs;
      uint32_t CycPrefix = 0;
      bool Terminated = false;
      for (uint32_t K = 0; K != Instrs.size() && !Terminated; ++K) {
        const AllocInstr &I = Instrs[K];
        ColdInfo C{InsBase + K + 1, CycBase + CycPrefix};
        FastOp O;

        if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
             I.Op == MOp::BitTestSet) &&
            !validSpace(I.Space)) {
          O.Kind = FOp::TrapStatic;
          O.Aux = static_cast<uint8_t>(sim::TrapKind::IllegalMemSpace);
          O.X = message(formatf("memory space %u in block b%u",
                                (unsigned)I.Space, B));
          emit(O, C);
          Terminated = true;
          break;
        }

        switch (I.Op) {
        case MOp::Clone:
          O.Kind = FOp::TrapStatic;
          O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
          O.X = message("clone pseudo in allocated code");
          emit(O, C);
          Terminated = true;
          break;
        case MOp::Branch:
          if (!Last && (NextB == I.Target || NextB == I.TargetElse)) {
            // Interior branch: a Guard that continues into the next
            // chain block and side-exits with cumulative counts.
            bool ContinueOnTrue = NextB == I.Target;
            O.Kind = static_cast<FOp>(static_cast<unsigned>(FOp::GuardEq) +
                                      static_cast<unsigned>(I.Cmp));
            O.Aux = ContinueOnTrue ? 1 : 0;
            O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
            O.B = static_cast<uint16_t>(srcSlot(I.Srcs[1]));
            O.X = ContinueOnTrue ? I.TargetElse : I.Target;
            Edges.push_back(
                {static_cast<uint32_t>(T.Ops.size()), B, Edge::KGuard});
            emit(O, C);
            InsBase += K + 1;
            CycBase += CycPrefix + Lat.Branch;
          } else {
            O.Kind = static_cast<FOp>(static_cast<unsigned>(FOp::BranchEq) +
                                      static_cast<unsigned>(I.Cmp));
            O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
            O.B = static_cast<uint16_t>(srcSlot(I.Srcs[1]));
            O.X = I.Target;
            O.Y = I.TargetElse;
            Edges.push_back(
                {static_cast<uint32_t>(T.Ops.size()), B, Edge::KBranch});
            emit(O, C);
          }
          Terminated = true;
          break;
        case MOp::Jump:
          if (!Last && NextB == I.Target) {
            // Interior jump: no op at all — the instruction fetch and
            // branch cost fold into the cumulative bases.
            InsBase += K + 1;
            CycBase += CycPrefix + Lat.Branch;
          } else {
            O.Kind = FOp::Jump;
            O.X = I.Target;
            Edges.push_back(
                {static_cast<uint32_t>(T.Ops.size()), B, Edge::KJump});
            emit(O, C);
          }
          Terminated = true;
          break;
        case MOp::Halt:
          O.Kind = FOp::Halt;
          O.N = static_cast<uint32_t>(I.Srcs.size());
          O.X = static_cast<uint32_t>(T.Pool.size());
          for (const AOperand &S : I.Srcs)
            T.Pool.push_back(static_cast<uint16_t>(srcSlot(S)));
          emit(O, C);
          Terminated = true;
          break;
        default:
          emitFusible(decodeSimple(I), C);
          CycPrefix += costOf(I);
          break;
        }
      }
      if (!Terminated) {
        // Fell off the end (only possible in the last chain block: a
        // block with no terminal has no successor).
        FastOp O;
        O.Kind = FOp::TrapStatic;
        O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
        O.X = message(formatf("fell off the end of block b%u", B));
        emit(O, {InsBase + static_cast<uint32_t>(Instrs.size()) + 1,
                 CycBase + CycPrefix});
      }
    }

    T.Meta[Chain.front()].EnterOp = EntryIdx;
    ++T.Superblocks;
    T.SuperblockOps += static_cast<uint32_t>(T.Ops.size()) - EntryIdx;
  }

  /// Resolves one stored block id to an op index, appending a trap op
  /// for edges that leave the program.
  uint32_t resolveEdge(uint32_t TargetBlock, const Edge &E,
                       const char *What) {
    if (TargetBlock < T.Meta.size())
      return T.Meta[TargetBlock].EnterOp;
    FastOp O;
    O.Kind = FOp::TrapStatic;
    O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
    O.X = message(
        formatf("%s in block b%u targets b%u", What, E.Block, TargetBlock));
    uint32_t Idx = static_cast<uint32_t>(T.Ops.size());
    ColdInfo C = T.Cold[E.OpIdx]; // taken-branch counts, sans branch cost
    emit(O, C);
    return Idx;
  }

  Translated run() {
    T.Prog = &P;
    T.Lat = Lat;
    T.Meta.resize(P.Blocks.size());
    T.EntryValid =
        P.Entry != ixp::NoBlock && P.Entry < P.Blocks.size();
    for (uint32_t B = 0; B != P.Blocks.size(); ++B)
      translateBlock(B);
    for (uint32_t B = 0; B != P.Blocks.size(); ++B)
      T.Meta[B].EnterOp = T.Meta[B].FirstOp;
    if (Options.Superblocks)
      buildSuperblocks();
    for (const Edge &E : Edges) {
      const char *What = E.K == Edge::KJump ? "jump" : "branch";
      // resolveEdge may append an op and reallocate T.Ops — re-index
      // after every call rather than holding a reference.
      uint32_t X = resolveEdge(T.Ops[E.OpIdx].X, E, What);
      T.Ops[E.OpIdx].X = X;
      if (E.K == Edge::KBranch) {
        uint32_t Y = resolveEdge(T.Ops[E.OpIdx].Y, E, What);
        T.Ops[E.OpIdx].Y = Y;
      }
    }
    return std::move(T);
  }
};

} // namespace

Translated fastpath::translate(const alloc::AllocatedProgram &P,
                               const sim::LatencyModel &Lat) {
  return translate(P, Lat, TranslateOptions());
}

Translated fastpath::translate(const alloc::AllocatedProgram &P,
                               const sim::LatencyModel &Lat,
                               const TranslateOptions &Options) {
  return Translator(P, Lat, Options).run();
}
