//===- Translate.cpp - AllocatedProgram -> flat pre-decoded op stream -----===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// One pass per block, stopping at the first terminal instruction (branch,
// jump, halt, clone pseudo, invalid memory space): everything past it is
// unreachable — blocks have a single entry and execute linearly. Ops past
// the terminal therefore never inflate the block's watchdog bound. Blocks
// that contain a statically illegal register operand are pinned to the
// per-instruction slow path (Meta.ForceSlow): the Err-latch timing of the
// interpreter is observable (which instruction traps, whether a memory
// charge lands first), so those blocks keep the interpreter's exact
// step-by-step schedule. Real allocator output never contains them; the
// hostile hand-built programs in the test suite do.
//
// Branch edges to invalid blocks resolve to appendix trap ops that carry
// the branch's own cold data and a pre-formatted message — the taken-edge
// check costs nothing at runtime.
//
//===----------------------------------------------------------------------===//

#include "fastpath/FastPath.h"

#include "sim/SimUtil.h"
#include "support/StringUtils.h"

#include <map>

using namespace nova;
using namespace nova::fastpath;
using namespace nova::sim::detail;
using alloc::AllocInstr;
using alloc::AOperand;
using alloc::PhysLoc;
using ixp::MOp;

namespace {

/// Frame base of a bank, or -1 for banks with no register file (M, C).
int bankBase(ixp::Bank B) {
  switch (B) {
  case ixp::Bank::A:  return 0;
  case ixp::Bank::B:  return 16;
  case ixp::Bank::L:  return 32;
  case ixp::Bank::S:  return 40;
  case ixp::Bank::LD: return 48;
  case ixp::Bank::SD: return 56;
  default:            return -1;
  }
}

unsigned bankSize(ixp::Bank B) {
  return B == ixp::Bank::A || B == ixp::Bank::B ? 16 : 8;
}

int regSlot(PhysLoc L) {
  int Base = bankBase(L.B);
  if (Base < 0 || L.Reg >= bankSize(L.B))
    return -1;
  return Base + L.Reg;
}

/// True when \p I ends the block's linear execution unconditionally.
bool isTerminal(const AllocInstr &I) {
  if (I.Op == MOp::Branch || I.Op == MOp::Jump || I.Op == MOp::Halt ||
      I.Op == MOp::Clone)
    return true;
  // An invalid memory space traps before operands are read.
  if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
       I.Op == MOp::BitTestSet) &&
      !validSpace(I.Space))
    return true;
  return false;
}

struct Translator {
  const alloc::AllocatedProgram &P;
  const sim::LatencyModel &Lat;
  Translated T;
  std::map<uint32_t, uint16_t> ConstSlots;

  /// Pending branch/jump edges: resolved to op indices once every block
  /// has a FirstOp.
  struct Edge {
    uint32_t OpIdx;
    uint32_t Block;   ///< block the branch/jump lives in (for messages)
    bool HasElse;
  };
  std::vector<Edge> Edges;

  Translator(const alloc::AllocatedProgram &Prog,
             const sim::LatencyModel &L)
      : P(Prog), Lat(L) {}

  uint16_t constSlot(uint32_t V) {
    auto It = ConstSlots.find(V);
    if (It != ConstSlots.end())
      return It->second;
    uint16_t S = static_cast<uint16_t>(FrameRegs + T.Consts.size());
    ConstSlots.emplace(V, S);
    T.Consts.push_back(V);
    return S;
  }

  int srcSlot(const AOperand &O) {
    return O.IsConst ? constSlot(O.Value) : regSlot(O.Loc);
  }

  uint32_t message(std::string M) {
    T.Messages.push_back(std::move(M));
    return static_cast<uint32_t>(T.Messages.size() - 1);
  }

  void emit(const FastOp &O, const ColdInfo &C) {
    T.Ops.push_back(O);
    T.Cold.push_back(C);
  }

  /// True when every register operand \p I names exists (constants are
  /// always fine). Terminal-before-read cases never reach here.
  bool operandsLegal(const AllocInstr &I) {
    for (const AOperand &S : I.Srcs)
      if (!S.IsConst && regSlot(S.Loc) < 0)
        return false;
    for (PhysLoc D : I.Dsts)
      if (regSlot(D) < 0)
        return false;
    return true;
  }

  unsigned costOf(const AllocInstr &I) const {
    switch (I.Op) {
    case MOp::Alu:
    case MOp::Move:
      return Lat.Alu;
    case MOp::Imm:
      // Large constants need two instructions on the IXP (paper §12).
      return I.Imm <= 0xFFFF || (I.Imm & 0xFFFF) == 0 ? Lat.Imm
                                                      : Lat.Imm + 1;
    case MOp::Hash:
      return Lat.HashOp;
    case MOp::MemRead:
    case MOp::MemWrite:
    case MOp::BitTestSet:
      return Lat.memAccess(I.Space);
    default:
      return 0; // Branch/Jump charge at the exit op; Halt/Clone charge 0
    }
  }

  void translateBlock(uint32_t B) {
    const std::vector<AllocInstr> &Instrs = P.Blocks[B].Instrs;
    BlockMeta &M = T.Meta[B];
    M.FirstOp = static_cast<uint32_t>(T.Ops.size());

    FastOp Entry;
    Entry.Kind = FOp::BlockEntry;
    Entry.X = B;
    emit(Entry, {});

    // Legality pre-scan: one statically illegal register pins the whole
    // block to the slow path (the Err latch makes per-instruction timing
    // observable from the first instruction that touches it).
    for (const AllocInstr &I : Instrs) {
      bool Terminal = isTerminal(I);
      bool ReadsOperands =
          I.Op != MOp::Clone &&
          !((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
             I.Op == MOp::BitTestSet) &&
            !validSpace(I.Space));
      if (ReadsOperands && !operandsLegal(I)) {
        M.ForceSlow = true;
        ++T.SlowBlocks;
        M.MaxPath = static_cast<uint32_t>(Instrs.size()) + 1;
        return;
      }
      if (Terminal)
        break;
    }

    uint32_t CycPrefix = 0;
    for (uint32_t K = 0; K != Instrs.size(); ++K) {
      const AllocInstr &I = Instrs[K];
      ColdInfo C{K + 1, CycPrefix};
      FastOp O;

      if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
           I.Op == MOp::BitTestSet) &&
          !validSpace(I.Space)) {
        O.Kind = FOp::TrapStatic;
        O.Aux = static_cast<uint8_t>(sim::TrapKind::IllegalMemSpace);
        O.X = message(
            formatf("memory space %u in block b%u", (unsigned)I.Space, B));
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      }

      switch (I.Op) {
      case MOp::Alu:
        O.Kind = static_cast<FOp>(static_cast<unsigned>(FOp::AluAdd) +
                                  static_cast<unsigned>(I.Alu));
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.B = static_cast<uint16_t>(
            I.Srcs.size() > 1 ? srcSlot(I.Srcs[1]) : constSlot(0));
        O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
        break;
      case MOp::Imm:
        O.Kind = FOp::Copy;
        O.A = constSlot(I.Imm);
        O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
        break;
      case MOp::Move:
        O.Kind = FOp::Copy;
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
        break;
      case MOp::Hash:
        O.Kind = FOp::Hash;
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
        break;
      case MOp::MemRead:
        O.Kind = FOp::MemRead;
        O.Aux = static_cast<uint8_t>(I.Space);
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.N = static_cast<uint32_t>(I.Dsts.size());
        O.X = static_cast<uint32_t>(T.Pool.size());
        for (PhysLoc D : I.Dsts)
          T.Pool.push_back(static_cast<uint16_t>(regSlot(D)));
        break;
      case MOp::MemWrite:
        O.Kind = FOp::MemWrite;
        O.Aux = static_cast<uint8_t>(I.Space);
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.N = static_cast<uint32_t>(I.Srcs.size() - 1);
        O.X = static_cast<uint32_t>(T.Pool.size());
        for (size_t S = 1; S != I.Srcs.size(); ++S)
          T.Pool.push_back(static_cast<uint16_t>(srcSlot(I.Srcs[S])));
        break;
      case MOp::BitTestSet:
        O.Kind = FOp::BitTestSet;
        O.Aux = static_cast<uint8_t>(I.Space);
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.B = static_cast<uint16_t>(srcSlot(I.Srcs[1]));
        O.D = static_cast<uint16_t>(regSlot(I.Dsts[0]));
        break;
      case MOp::Clone:
        O.Kind = FOp::TrapStatic;
        O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
        O.X = message("clone pseudo in allocated code");
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      case MOp::Branch:
        O.Kind = static_cast<FOp>(static_cast<unsigned>(FOp::BranchEq) +
                                  static_cast<unsigned>(I.Cmp));
        O.A = static_cast<uint16_t>(srcSlot(I.Srcs[0]));
        O.B = static_cast<uint16_t>(srcSlot(I.Srcs[1]));
        O.X = I.Target;     // block ids until the patch pass
        O.Y = I.TargetElse;
        Edges.push_back({static_cast<uint32_t>(T.Ops.size()), B, true});
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      case MOp::Jump:
        O.Kind = FOp::Jump;
        O.X = I.Target;
        Edges.push_back({static_cast<uint32_t>(T.Ops.size()), B, false});
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      case MOp::Halt:
        O.Kind = FOp::Halt;
        O.N = static_cast<uint32_t>(I.Srcs.size());
        O.X = static_cast<uint32_t>(T.Pool.size());
        for (const AOperand &S : I.Srcs)
          T.Pool.push_back(static_cast<uint16_t>(srcSlot(S)));
        emit(O, C);
        M.MaxPath = K + 1;
        return;
      }
      emit(O, C);
      CycPrefix += costOf(I);
    }

    // Fell off the end: one more instruction fetch, then the trap.
    FastOp O;
    O.Kind = FOp::TrapStatic;
    O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
    O.X = message(formatf("fell off the end of block b%u", B));
    emit(O, {static_cast<uint32_t>(Instrs.size()) + 1, CycPrefix});
    M.MaxPath = static_cast<uint32_t>(Instrs.size()) + 1;
  }

  /// Resolves one stored block id to an op index, appending a trap op
  /// for edges that leave the program.
  uint32_t resolveEdge(uint32_t TargetBlock, const Edge &E,
                       const char *What) {
    if (TargetBlock < T.Meta.size())
      return T.Meta[TargetBlock].FirstOp;
    FastOp O;
    O.Kind = FOp::TrapStatic;
    O.Aux = static_cast<uint8_t>(sim::TrapKind::MalformedProgram);
    O.X = message(
        formatf("%s in block b%u targets b%u", What, E.Block, TargetBlock));
    uint32_t Idx = static_cast<uint32_t>(T.Ops.size());
    ColdInfo C = T.Cold[E.OpIdx]; // taken-branch counts, sans branch cost
    emit(O, C);
    return Idx;
  }

  Translated run() {
    T.Prog = &P;
    T.Lat = Lat;
    T.Meta.resize(P.Blocks.size());
    T.EntryValid =
        P.Entry != ixp::NoBlock && P.Entry < P.Blocks.size();
    for (uint32_t B = 0; B != P.Blocks.size(); ++B)
      translateBlock(B);
    for (const Edge &E : Edges) {
      const char *What = E.HasElse ? "branch" : "jump";
      // resolveEdge may append an op and reallocate T.Ops — re-index
      // after every call rather than holding a reference.
      uint32_t X = resolveEdge(T.Ops[E.OpIdx].X, E, What);
      T.Ops[E.OpIdx].X = X;
      if (E.HasElse) {
        uint32_t Y = resolveEdge(T.Ops[E.OpIdx].Y, E, What);
        T.Ops[E.OpIdx].Y = Y;
      }
    }
    return std::move(T);
  }
};

} // namespace

Translated fastpath::translate(const alloc::AllocatedProgram &P,
                               const sim::LatencyModel &Lat) {
  return Translator(P, Lat).run();
}
