//===- BatchMemory.h - Paged, journaled memory for batched runs -*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Memory backing for the translating fast path (src/fastpath). The
/// interpreter gives every packet a fresh copy of the app's sparse
/// std::map images; at batched-soak rates those per-packet map copies and
/// node allocations dominate. BatchMemory replaces them with lazily
/// allocated zero pages plus a write journal:
///
///  - loads are two dereferences (page table, page), absent words read 0
///    without allocating anything — the interpreter's non-inserting load;
///  - every store records {space, addr, old value} in a journal, so
///    reset() restores the pre-packet state by replaying the journal in
///    reverse — cost proportional to the packet's writes, not the image;
///  - the app's table environment is applied once at construction,
///    *below* the journal floor, so reset() lands back on it;
///  - setup stores with addresses beyond the per-space bound (the fuzz
///    generator aims pointers at the SDRAM edge and apps::storePacket
///    wraps) land in a small per-packet overflow map — program accesses
///    out there always range-trap before touching data, so the dense
///    pages are never indexed out of bounds.
///
/// image() reconstructs the exact sparse map the interpreter would have
/// ended the run with (base entries, every stored address including
/// stored zeros, overflow entries), which is what lets the soak oracle
/// compare fast-path and interpreter images entry-for-entry.
///
//===----------------------------------------------------------------------===//

#ifndef FASTPATH_BATCHMEMORY_H
#define FASTPATH_BATCHMEMORY_H

#include "sim/Simulator.h"

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

namespace nova {
namespace fastpath {

class BatchMemory {
public:
  /// Captures \p Base's limits and table images as the permanent floor
  /// every reset() returns to.
  explicit BatchMemory(const sim::Memory &Base);

  const sim::MemLimits &limits() const { return Lim; }

  /// Same predicate as sim::Memory::inRange.
  bool inRange(MemSpace S, uint32_t Addr, uint32_t Count) const {
    uint32_t Bound = Lim.words(S);
    return Count <= Bound && Addr <= Bound - Count;
  }

  /// Non-inserting load; absent words are 0.
  uint32_t load(MemSpace S, uint32_t A) const {
    const Spc &P = Spaces[static_cast<unsigned>(S)];
    if (A >= P.Bound)
      return loadOverflow(P, A);
    const std::unique_ptr<uint32_t[]> &Pg = P.Pages[A >> PageShift];
    return Pg ? Pg[A & PageMask] : 0;
  }

  /// Journaled store. \p A must be below the space's bound (program
  /// stores are range-checked before they reach here).
  void store(MemSpace S, uint32_t A, uint32_t V) {
    Spc &P = Spaces[static_cast<unsigned>(S)];
    uint32_t *Pg = pageFor(P, A);
    Journal.push_back({A, Pg[A & PageMask], static_cast<uint8_t>(S)});
    Pg[A & PageMask] = V;
  }

  /// Pre-run packet DMA with apps::storePacket's semantics: word I lands
  /// at Addr + I with uint32 wraparound. Out-of-bound words go to the
  /// per-packet overflow map (cleared by reset()).
  void storePacket(uint32_t Addr, const std::vector<uint32_t> &Words);

  /// Undoes every store since construction or the last reset().
  void reset();

  /// The sparse image the interpreter would hold for \p S right now:
  /// base entries, every address stored since the last reset (stored
  /// zeros included), and overflow entries.
  std::map<uint32_t, uint32_t> image(MemSpace S) const;

private:
  static constexpr unsigned PageShift = 12; ///< 4096 words = 16 KB pages
  static constexpr uint32_t PageMask = (1u << PageShift) - 1;

  struct Spc {
    uint32_t Bound = 0;
    std::vector<std::unique_ptr<uint32_t[]>> Pages;
    std::map<uint32_t, uint32_t> Base;     ///< permanent app tables
    std::map<uint32_t, uint32_t> Overflow; ///< per-packet, beyond Bound
  };

  static uint32_t loadOverflow(const Spc &P, uint32_t A) {
    auto It = P.Overflow.find(A);
    return It == P.Overflow.end() ? 0 : It->second;
  }

  uint32_t *pageFor(Spc &P, uint32_t A) {
    std::unique_ptr<uint32_t[]> &Pg = P.Pages[A >> PageShift];
    if (!Pg)
      Pg = std::make_unique<uint32_t[]>(size_t(1) << PageShift);
    return Pg.get();
  }

  struct JEntry {
    uint32_t Addr;
    uint32_t Old;
    uint8_t Space;
  };

  sim::MemLimits Lim;
  Spc Spaces[3];
  std::vector<JEntry> Journal;
};

} // namespace fastpath
} // namespace nova

#endif // FASTPATH_BATCHMEMORY_H
