//===- Segment.h - Resumable fast-path execution context --------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SegmentContext runs a fastpath::Translated stream with the resumable
/// contract of sim::AllocContext: resume() executes until the run
/// completes or a memory reference is issued, memory data effects apply
/// at issue, and the caller decides what the reference costs and pays it
/// with charge(). That lets chip::Chip drive each hardware context on
/// the translated fast path between swap points while keeping the
/// discrete-event schedule — swap order, channel contention, stall
/// cycles, ring traces, final memory images — bit-identical to the
/// interpreted chip.
///
/// The trick that makes the flat stream resumable is the same cold-data
/// algebra the Engine uses for traps, applied at yields: the yielding
/// memory op materializes exact interpreter counts from (base + cold),
/// and re-entry recomputes the bases from the updated counters
/// (StartCyc = R.Cycles - CycPrefix), absorbing whatever
/// contention-dependent latency the caller charged between bursts.
/// Memory-op flat costs (FastOp::Y) are never self-charged here — the
/// caller owns them, exactly like the interpreter's yield contract.
///
/// Exactness escape hatches mirror the Engine: blocks that can observe
/// per-instruction state run on a per-instruction slow tier that is
/// itself resumable (it mirrors sim::AllocContext::resume including the
/// Err-latch timing, injector draw order, and spill-window rebasing).
///
//===----------------------------------------------------------------------===//

#ifndef FASTPATH_SEGMENT_H
#define FASTPATH_SEGMENT_H

#include "fastpath/FastPath.h"
#include "sim/ExecContext.h"

namespace nova {
namespace fastpath {

/// A resumable fast-path execution of one Translated program: private
/// register frame, a stream PC, and in-progress RunResult accounting.
/// Drop-in for sim::AllocContext in the chip's context-swap loop.
class SegmentContext {
public:
  using Yield = sim::AllocContext::Yield;

  SegmentContext() = default;
  explicit SegmentContext(const Translated *Tr) { setProgram(Tr); }

  void setProgram(const Translated *Tr);
  const Translated *translated() const { return T; }

  /// Per-context spill window displacement in scratch words (see
  /// sim::AllocContext). 0 = run at the program's own spill addresses.
  void setSpillRebase(uint32_t Words) { SpillRebase = Words; }

  /// Re-targets the context at a fresh run. On a malformed entry the
  /// context is immediately done() with the trap in result().
  void reset(const std::vector<uint32_t> &Args);

  bool done() const { return Finished; }
  const sim::RunResult &result() const { return R; }
  sim::RunResult takeResult() { return std::move(R); }

  /// Discards an in-progress run, mirroring sim::AllocContext::abort():
  /// the context becomes done() with an empty (non-Ok) result, all
  /// resume bookkeeping (slow-tier position, fast-yield latch, cold-data
  /// bases) is cleared, and reset() starts a fresh attempt. The chip
  /// supervisor's recovery path relies on this working identically in
  /// both exec modes.
  void abort() {
    Finished = true;
    InSlow = false;
    FastYield = false;
    Err = false;
    PC = YieldPC = 0;
    Ins = Cyc = StartIns = StartCyc = 0;
    SB = 0;
    SIdx = 0;
    R = sim::RunResult();
    R.Ok = false;
  }

  /// Adds externally-decided cycles (memory latency, queueing delay) to
  /// the run's cycle count.
  void charge(uint64_t Cycles) { R.Cycles += Cycles; }

  /// Executes until the next swap point. Requires !done(). Opts.Lat must
  /// be the model the program was translated with.
  Yield resume(sim::Memory &Mem, const sim::RunOptions &Opts);

  /// Checkpoint serialization of the resumable run state (frame, PCs,
  /// cold-data bases, accounting). The Translated binding and spill
  /// rebase are construction-time configuration and are NOT saved —
  /// restore into a context already wired via setProgram() to the same
  /// (deterministically re-translated) program.
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);

private:
  const Translated *T = nullptr;
  std::vector<uint32_t> Frame;
  sim::RunResult R;
  bool Finished = true; ///< no run in progress until reset()
  bool Err = false;     ///< slow-tier illegal-register latch
  bool InSlow = false;  ///< resuming inside the per-instruction tier
  bool FastYield = false; ///< resuming after a fast-tier memory yield
  uint32_t SpillRebase = 0;
  uint32_t PC = 0;      ///< fast-tier op index
  uint32_t YieldPC = 0; ///< the memory op the last fast burst yielded at
  uint64_t Ins = 0, Cyc = 0;         ///< exact at block boundaries
  uint64_t StartIns = 0, StartCyc = 0; ///< bases for cold-data exits
  ixp::BlockId SB = 0;  ///< slow-tier block
  unsigned SIdx = 0;    ///< slow-tier instruction index

  /// Runs the per-instruction tier from (SB, SIdx). Returns true with
  /// \p Y filled when the burst ends (yield or done); returns false when
  /// control falls back to the fast dispatch at a block boundary.
  bool slowStep(sim::Memory &Mem, const sim::RunOptions &Opts,
                uint64_t BurstStart, Yield &Y);
};

} // namespace fastpath
} // namespace nova

#endif // FASTPATH_SEGMENT_H
