//===- Segment.cpp - Resumable fast-path execution context ----------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Behaviour contract (pinned by the chip-threaded-vs-chip-interp
// whole-report equality test and the sampled three-way oracle): yields at
// exactly the instructions sim::AllocContext would yield at, with the
// same space and burst cycle count, the same memory data effects already
// applied (including spill-window rebasing), and the same trap kinds,
// messages, and counts on completion. The slow tier mirrors
// AllocContext::resume line for line — Err latched on a memory operand
// traps at the next resume() after the caller's charge, the bit flip
// uses the live instruction count, jitter draws at MemRead/MemWrite
// issue only — and the fast tier reconstructs exact counters from cold
// data at every yield and exit.
//
//===----------------------------------------------------------------------===//

#include "fastpath/Segment.h"

#include "sim/SimUtil.h"
#include "support/FaultInjection.h"
#include "support/HwHash.h"
#include "support/StringUtils.h"

#include <cassert>
#include <cstring>

using namespace nova;
using namespace nova::fastpath;
using namespace nova::sim::detail;
using alloc::AllocInstr;
using alloc::AOperand;
using alloc::PhysLoc;
using ixp::MOp;

void SegmentContext::setProgram(const Translated *Tr) {
  T = Tr;
  Frame.assign(Tr->frameSize(), 0);
  std::copy(Tr->Consts.begin(), Tr->Consts.end(), Frame.begin() + FrameRegs);
  Finished = true;
}

void SegmentContext::reset(const std::vector<uint32_t> &Args) {
  assert(T && "reset() before setProgram()");
  R = sim::RunResult();
  Err = false;
  InSlow = false;
  FastYield = false;
  Ins = Cyc = 0;
  StartIns = StartCyc = 0;
  std::memset(Frame.data(), 0, FrameRegs * sizeof(uint32_t));

  if (!T->EntryValid) {
    trap(R, sim::TrapKind::MalformedProgram, "no entry block");
    Finished = true;
    return;
  }
  if (Args.size() > 15) {
    trap(R, sim::TrapKind::MalformedProgram, "too many entry arguments");
    Finished = true;
    return;
  }
  for (unsigned I = 0; I != Args.size(); ++I)
    Frame[I] = Args[I];
  PC = T->Meta[T->Prog->Entry].EnterOp;
  Finished = false;
}

//===----------------------------------------------------------------------===//
// Slow tier: resumable per-instruction execution, interpreter-exact.
//===----------------------------------------------------------------------===//

namespace {
struct RegFile {
  uint32_t *Regs;
  unsigned Size;
};
} // namespace

bool SegmentContext::slowStep(sim::Memory &Mem, const sim::RunOptions &Opts,
                              uint64_t BurstStart, Yield &Y) {
  const alloc::AllocatedProgram &P = *T->Prog;
  const sim::LatencyModel &Lat = Opts.Lat;
  uint32_t *F = Frame.data();
  const bool Faults = FaultInjector::armed();

  auto finish = [&]() {
    Finished = true;
    Y = {Yield::Kind::Done, MemSpace::Sram, R.Cycles - BurstStart};
    return true;
  };
  auto file = [&](ixp::Bank Bk) -> RegFile {
    switch (Bk) {
    case ixp::Bank::A:  return {F + 0, 16};
    case ixp::Bank::B:  return {F + 16, 16};
    case ixp::Bank::L:  return {F + 32, 8};
    case ixp::Bank::S:  return {F + 40, 8};
    case ixp::Bank::LD: return {F + 48, 8};
    case ixp::Bank::SD: return {F + 56, 8};
    default:            return {nullptr, 0};
    }
  };
  auto read = [&](const AOperand &O) -> uint32_t {
    if (O.IsConst)
      return O.Value;
    RegFile RF = file(O.Loc.B);
    if (!RF.Regs || O.Loc.Reg >= RF.Size) {
      Err = true;
      return 0;
    }
    return RF.Regs[O.Loc.Reg];
  };
  auto writeReg = [&](PhysLoc L, uint32_t V) {
    RegFile RF = file(L.B);
    if (!RF.Regs || L.Reg >= RF.Size) {
      Err = true;
      return;
    }
    RF.Regs[L.Reg] = V;
  };
  auto effectiveAddr = [&](MemSpace S, uint32_t Addr) -> uint32_t {
    if (SpillRebase && S == MemSpace::Scratch && Addr >= P.SpillBase &&
        Addr - P.SpillBase < P.NumSpillSlots)
      return Addr + SpillRebase;
    return Addr;
  };

  while (true) {
    if (++R.Instructions > Opts.MaxInstructions) {
      trap(R, sim::TrapKind::Watchdog,
           formatf("instruction budget of %llu exhausted",
                   (unsigned long long)Opts.MaxInstructions));
      return finish();
    }
    if (SIdx >= P.Blocks[SB].Instrs.size()) {
      trap(R, sim::TrapKind::MalformedProgram,
           formatf("fell off the end of block b%u", SB));
      return finish();
    }
    const AllocInstr &I = P.Blocks[SB].Instrs[SIdx++];

    if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
         I.Op == MOp::BitTestSet) &&
        !validSpace(I.Space)) {
      trap(R, sim::TrapKind::IllegalMemSpace,
           formatf("memory space %u in block b%u", (unsigned)I.Space, SB));
      return finish();
    }

    switch (I.Op) {
    case MOp::Alu: {
      uint32_t A = read(I.Srcs[0]);
      uint32_t Bv = I.Srcs.size() > 1 ? read(I.Srcs[1]) : 0;
      if (Opts.TrapOnShiftRange && cps::shiftOutOfRange(I.Alu, Bv)) {
        trap(R, sim::TrapKind::ShiftRange,
             formatf("shift count %u in block b%u", Bv, SB));
        return finish();
      }
      uint32_t V = cps::evalPrim(I.Alu, A, Bv);
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::SimBitFlip))
        V ^= 1u << (R.Instructions & 31);
      writeReg(I.Dsts[0], V);
      R.Cycles += Lat.Alu;
      break;
    }
    case MOp::Imm:
      writeReg(I.Dsts[0], I.Imm);
      R.Cycles += I.Imm <= 0xFFFF || (I.Imm & 0xFFFF) == 0 ? Lat.Imm
                                                           : Lat.Imm + 1;
      break;
    case MOp::Move:
      writeReg(I.Dsts[0], read(I.Srcs[0]));
      R.Cycles += Lat.Alu;
      break;
    case MOp::MemRead: {
      uint32_t Addr = effectiveAddr(I.Space, read(I.Srcs[0]));
      uint32_t Count = static_cast<uint32_t>(I.Dsts.size());
      if (!Err && !Mem.inRange(I.Space, Addr, Count)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s read of %u words at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Count, Addr,
                     Mem.Limits.words(I.Space)));
        return finish();
      }
      auto &Space = *Mem.space(I.Space);
      for (unsigned K = 0; K != I.Dsts.size(); ++K)
        writeReg(I.Dsts[K], sim::Memory::load(Space, Addr + K));
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::MemJitter))
        R.Cycles +=
            FaultInjector::instance().drawCycles(FaultKind::MemJitter, 16);
      // An Err latched above traps at the next resume(), after the
      // caller's charge — the interpreter's bottom-of-iteration timing.
      Y = {Yield::Kind::Mem, I.Space, R.Cycles - BurstStart};
      return true;
    }
    case MOp::MemWrite: {
      uint32_t Addr = effectiveAddr(I.Space, read(I.Srcs[0]));
      uint32_t Count = static_cast<uint32_t>(I.Srcs.size() - 1);
      if (!Err && !Mem.inRange(I.Space, Addr, Count)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s write of %u words at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Count, Addr,
                     Mem.Limits.words(I.Space)));
        return finish();
      }
      auto &Space = *Mem.space(I.Space);
      for (unsigned K = 1; K != I.Srcs.size(); ++K)
        Space[Addr + K - 1] = read(I.Srcs[K]);
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::MemJitter))
        R.Cycles +=
            FaultInjector::instance().drawCycles(FaultKind::MemJitter, 16);
      Y = {Yield::Kind::Mem, I.Space, R.Cycles - BurstStart};
      return true;
    }
    case MOp::Hash:
      writeReg(I.Dsts[0], hwHash(read(I.Srcs[0])));
      R.Cycles += Lat.HashOp;
      break;
    case MOp::BitTestSet: {
      uint32_t Addr = effectiveAddr(I.Space, read(I.Srcs[0]));
      uint32_t Bits = read(I.Srcs[1]);
      if (!Err && !Mem.inRange(I.Space, Addr, 1)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s bit-test-set at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Addr, Mem.Limits.words(I.Space)));
        return finish();
      }
      auto &Space = *Mem.space(I.Space);
      uint32_t Old = sim::Memory::load(Space, Addr);
      Space[Addr] = Old | Bits;
      writeReg(I.Dsts[0], Old);
      Y = {Yield::Kind::Mem, I.Space, R.Cycles - BurstStart};
      return true; // no jitter draw for BitTestSet
    }
    case MOp::Clone:
      trap(R, sim::TrapKind::MalformedProgram,
           "clone pseudo in allocated code");
      return finish();
    case MOp::Branch: {
      ixp::BlockId Tgt =
          cps::evalCmp(I.Cmp, read(I.Srcs[0]), read(I.Srcs[1]))
              ? I.Target
              : I.TargetElse;
      if (Tgt >= P.Blocks.size()) {
        trap(R, sim::TrapKind::MalformedProgram,
             formatf("branch in block b%u targets b%u", SB, Tgt));
        return finish();
      }
      R.Cycles += Lat.Branch;
      if (Err) {
        // The interpreter re-targets B before its bottom-of-iteration
        // check, so the message names the *taken* block.
        trap(R, sim::TrapKind::IllegalRegister,
             formatf("illegal register access in block b%u", Tgt));
        return finish();
      }
      InSlow = false;
      Ins = R.Instructions;
      Cyc = R.Cycles;
      PC = T->Meta[Tgt].EnterOp;
      return false;
    }
    case MOp::Jump:
      if (I.Target >= P.Blocks.size()) {
        trap(R, sim::TrapKind::MalformedProgram,
             formatf("jump in block b%u targets b%u", SB, I.Target));
        return finish();
      }
      R.Cycles += Lat.Branch;
      InSlow = false;
      Ins = R.Instructions;
      Cyc = R.Cycles;
      PC = T->Meta[I.Target].EnterOp;
      return false;
    case MOp::Halt:
      for (const AOperand &S : I.Srcs)
        R.HaltValues.push_back(read(S));
      if (Err) {
        trap(R, sim::TrapKind::IllegalRegister,
             "illegal register access at halt");
        return finish();
      }
      R.Ok = true;
      return finish();
    }
    if (Err) {
      trap(R, sim::TrapKind::IllegalRegister,
           formatf("illegal register access in block b%u", SB));
      return finish();
    }
  }
}

//===----------------------------------------------------------------------===//
// Fast tier: switch dispatch over the translated stream, yielding at
// memory references. Bursts between yields are short, so a plain switch
// is fine here; the standalone Engine keeps the computed-goto loop.
//===----------------------------------------------------------------------===//

SegmentContext::Yield SegmentContext::resume(sim::Memory &Mem,
                                             const sim::RunOptions &Opts) {
  assert(!Finished && "resume() on a completed context");
  const uint64_t BurstStart = R.Cycles;
  auto finish = [&]() -> Yield {
    Finished = true;
    return {Yield::Kind::Done, MemSpace::Sram, R.Cycles - BurstStart};
  };

  if (InSlow) {
    // An illegal-register access latched while issuing the memory
    // operand of the previous burst: trap now, after the caller's
    // charge, exactly like the interpreter.
    if (Err) {
      trap(R, sim::TrapKind::IllegalRegister,
           formatf("illegal register access in block b%u", SB));
      return finish();
    }
  } else if (FastYield) {
    // Re-derive the bases from the counters the yield materialized plus
    // whatever the caller charged: StartCyc absorbs the charge, so every
    // later exit still reconstructs exact interpreter counts.
    const ColdInfo &C = T->Cold[YieldPC];
    StartIns = R.Instructions - C.InsDelta;
    StartCyc = R.Cycles - C.CycPrefix;
    PC = YieldPC + 1;
    FastYield = false;
  }

  const alloc::AllocatedProgram &P = *T->Prog;
  const FastOp *Ops = T->Ops.data();
  const ColdInfo *ColdA = T->Cold.data();
  const uint16_t *Pool = T->Pool.data();
  const BlockMeta *Meta = T->Meta.data();
  uint32_t *F = Frame.data();
  const uint64_t MaxIns = Opts.MaxInstructions;
  const unsigned BranchCost = Opts.Lat.Branch;
  const bool SlowAll = FaultInjector::armed() || Opts.TrapOnShiftRange;
  auto effectiveAddr = [&](MemSpace S, uint32_t Addr) -> uint32_t {
    if (SpillRebase && S == MemSpace::Scratch && Addr >= P.SpillBase &&
        Addr - P.SpillBase < P.NumSpillSlots)
      return Addr + SpillRebase;
    return Addr;
  };

  while (true) {
    if (InSlow) {
      Yield Y;
      if (slowStep(Mem, Opts, BurstStart, Y))
        return Y;
      continue; // back on the fast tier at a block boundary
    }

    const FastOp &O = Ops[PC];
    switch (O.Kind) {
    case FOp::BlockEntry: {
      const BlockMeta &M = Meta[O.X];
      if (SlowAll || M.ForceSlow || Ins + M.MaxPath > MaxIns) {
        R.Instructions = Ins;
        R.Cycles = Cyc;
        InSlow = true;
        SB = O.X;
        SIdx = 0;
        break;
      }
      StartIns = Ins;
      StartCyc = Cyc;
      ++PC;
      break;
    }

    case FOp::SuperEntry:
      if (SlowAll || Ins + O.Y > MaxIns) {
        PC = Meta[O.X].FirstOp;
        break;
      }
      StartIns = Ins;
      StartCyc = Cyc;
      ++PC;
      break;

    case FOp::AluAdd:
    case FOp::AluSub:
    case FOp::AluAnd:
    case FOp::AluOr:
    case FOp::AluXor:
    case FOp::AluShl:
    case FOp::AluShr:
    case FOp::AluNot:
      F[O.D] = cps::evalPrim(
          static_cast<cps::PrimOp>(static_cast<unsigned>(O.Kind) -
                                   static_cast<unsigned>(FOp::AluAdd)),
          F[O.A], F[O.B]);
      ++PC;
      break;

    case FOp::Copy:
      F[O.D] = F[O.A];
      ++PC;
      break;

    // Fused pairs: the leading copy writes before the second op reads,
    // matching the unfused frame state exactly.
    case FOp::FuseCopyAdd:
    case FOp::FuseCopySub:
    case FOp::FuseCopyAnd:
    case FOp::FuseCopyOr:
    case FOp::FuseCopyXor:
    case FOp::FuseCopyShl:
    case FOp::FuseCopyShr:
    case FOp::FuseCopyNot:
      F[O.X] = F[O.Y];
      F[O.D] = cps::evalPrim(
          static_cast<cps::PrimOp>(static_cast<unsigned>(O.Kind) -
                                   static_cast<unsigned>(FOp::FuseCopyAdd)),
          F[O.A], F[O.B]);
      ++PC;
      break;

    case FOp::FuseCopyCopy:
      F[O.X] = F[O.Y];
      F[O.D] = F[O.A];
      ++PC;
      break;

    case FOp::FuseShlAdd:
      F[O.D] = cps::evalPrim(cps::PrimOp::Add, F[O.X],
                             cps::evalPrim(cps::PrimOp::Shl, F[O.A], F[O.B]));
      ++PC;
      break;

    case FOp::Hash:
      F[O.D] = hwHash(F[O.A]);
      ++PC;
      break;

    case FOp::FuseCopyMemRead:
    case FOp::MemRead: {
      if (O.Kind == FOp::FuseCopyMemRead)
        F[O.D] = F[O.B]; // leading copy retires before the memory op
      MemSpace S = static_cast<MemSpace>(O.Aux);
      uint32_t Addr = effectiveAddr(S, F[O.A]);
      const ColdInfo &C = ColdA[PC];
      if (!Mem.inRange(S, Addr, O.N)) {
        R.Instructions = StartIns + C.InsDelta;
        R.Cycles = StartCyc + C.CycPrefix;
        trap(R, rangeTrapFor(S),
             formatf("%s read of %u words at 0x%x (limit 0x%x)",
                     spaceName(S), O.N, Addr, Mem.Limits.words(S)));
        return finish();
      }
      auto &Sp = *Mem.space(S);
      const uint16_t *Dst = Pool + O.X;
      for (uint32_t K = 0; K != O.N; ++K)
        F[Dst[K]] = sim::Memory::load(Sp, Addr + K);
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      YieldPC = PC;
      FastYield = true;
      return {Yield::Kind::Mem, S, R.Cycles - BurstStart};
    }

    case FOp::FuseCopyMemWrite:
    case FOp::MemWrite: {
      if (O.Kind == FOp::FuseCopyMemWrite)
        F[O.D] = F[O.B];
      MemSpace S = static_cast<MemSpace>(O.Aux);
      uint32_t Addr = effectiveAddr(S, F[O.A]);
      const ColdInfo &C = ColdA[PC];
      if (!Mem.inRange(S, Addr, O.N)) {
        R.Instructions = StartIns + C.InsDelta;
        R.Cycles = StartCyc + C.CycPrefix;
        trap(R, rangeTrapFor(S),
             formatf("%s write of %u words at 0x%x (limit 0x%x)",
                     spaceName(S), O.N, Addr, Mem.Limits.words(S)));
        return finish();
      }
      auto &Sp = *Mem.space(S);
      const uint16_t *Src = Pool + O.X;
      for (uint32_t K = 0; K != O.N; ++K)
        Sp[Addr + K] = F[Src[K]];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      YieldPC = PC;
      FastYield = true;
      return {Yield::Kind::Mem, S, R.Cycles - BurstStart};
    }

    case FOp::BitTestSet: {
      MemSpace S = static_cast<MemSpace>(O.Aux);
      uint32_t Addr = effectiveAddr(S, F[O.A]);
      const ColdInfo &C = ColdA[PC];
      if (!Mem.inRange(S, Addr, 1)) {
        R.Instructions = StartIns + C.InsDelta;
        R.Cycles = StartCyc + C.CycPrefix;
        trap(R, rangeTrapFor(S),
             formatf("%s bit-test-set at 0x%x (limit 0x%x)", spaceName(S),
                     Addr, Mem.Limits.words(S)));
        return finish();
      }
      auto &Sp = *Mem.space(S);
      uint32_t Old = sim::Memory::load(Sp, Addr);
      Sp[Addr] = Old | F[O.B];
      F[O.D] = Old;
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      YieldPC = PC;
      FastYield = true;
      return {Yield::Kind::Mem, S, R.Cycles - BurstStart};
    }

    case FOp::BranchEq:
    case FOp::BranchNe:
    case FOp::BranchLt:
    case FOp::BranchGt:
    case FOp::BranchLe:
    case FOp::BranchGe: {
      const ColdInfo &C = ColdA[PC];
      Ins = StartIns + C.InsDelta;
      Cyc = StartCyc + C.CycPrefix + BranchCost;
      PC = cps::evalCmp(
               static_cast<cps::CmpOp>(static_cast<unsigned>(O.Kind) -
                                       static_cast<unsigned>(FOp::BranchEq)),
               F[O.A], F[O.B])
               ? O.X
               : O.Y;
      break;
    }

    case FOp::GuardEq:
    case FOp::GuardNe:
    case FOp::GuardLt:
    case FOp::GuardGt:
    case FOp::GuardLe:
    case FOp::GuardGe: {
      if (cps::evalCmp(
              static_cast<cps::CmpOp>(static_cast<unsigned>(O.Kind) -
                                      static_cast<unsigned>(FOp::GuardEq)),
              F[O.A], F[O.B]) == (O.Aux != 0)) {
        ++PC;
        break;
      }
      const ColdInfo &C = ColdA[PC];
      Ins = StartIns + C.InsDelta;
      Cyc = StartCyc + C.CycPrefix + BranchCost;
      PC = O.X;
      break;
    }

    case FOp::Jump: {
      const ColdInfo &C = ColdA[PC];
      Ins = StartIns + C.InsDelta;
      Cyc = StartCyc + C.CycPrefix + BranchCost;
      PC = O.X;
      break;
    }

    case FOp::Halt: {
      const ColdInfo &C = ColdA[PC];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      const uint16_t *Src = Pool + O.X;
      for (uint32_t K = 0; K != O.N; ++K)
        R.HaltValues.push_back(F[Src[K]]);
      R.Ok = true;
      return finish();
    }

    case FOp::TrapStatic: {
      const ColdInfo &C = ColdA[PC];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      trap(R, static_cast<sim::TrapKind>(O.Aux), T->Messages[O.X]);
      return finish();
    }
    }
  }
}

//===----------------------------------------------------------------------===//
// Checkpoint serialization
//===----------------------------------------------------------------------===//

void SegmentContext::saveState(BinWriter &W) const {
  W.vec32(Frame);
  R.saveState(W);
  W.b(Finished);
  W.b(Err);
  W.b(InSlow);
  W.b(FastYield);
  W.u32(PC);
  W.u32(YieldPC);
  W.u64(Ins);
  W.u64(Cyc);
  W.u64(StartIns);
  W.u64(StartCyc);
  W.u32(SB);
  W.u32(SIdx);
}

void SegmentContext::restoreState(BinReader &Rd) {
  Frame = Rd.vec32();
  R.restoreState(Rd);
  Finished = Rd.b();
  Err = Rd.b();
  InSlow = Rd.b();
  FastYield = Rd.b();
  PC = Rd.u32();
  YieldPC = Rd.u32();
  Ins = Rd.u64();
  Cyc = Rd.u64();
  StartIns = Rd.u64();
  StartCyc = Rd.u64();
  SB = Rd.u32();
  SIdx = Rd.u32();
}
