//===- FastPath.h - Translating fast path for allocated code ----*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A translating execution mode for alloc::AllocatedProgram: each program
/// is pre-translated once into a flat, pre-decoded op stream executed by
/// a computed-goto dispatch loop (src/fastpath/Engine.cpp). The fast path
/// is itself a compiler, so it plugs into the soak harness's differential
/// oracle with the interpreter (sim::AllocContext) as the reference — the
/// contract is *bit-identical* RunResults: same trap kinds and message
/// strings, same instruction and cycle counts at the trap point, same
/// halt values and final memory images, same fault-injector draw
/// sequences.
///
/// Translation scheme:
///  - operands become direct offsets into a flat register frame (the six
///    banks at fixed bases) with constants folded into frame slots, so
///    an operand read is one unchecked array index;
///  - PrimOp/CmpOp are folded into specialized opcodes (AluAdd..AluNot,
///    BranchEq..BranchGe) whose handlers call the centralized
///    cps::evalPrim/evalCmp with a compile-time op;
///  - block targets resolve to op indices; a branch edge to an invalid
///    block resolves to a pre-formatted trap op, so the runtime check
///    disappears;
///  - instruction and cycle accounting is block-aggregated: interior ops
///    touch no counters. Every exit op (branch, jump, halt, trap)
///    reconstructs the exact interpreter counts from per-op cold data
///    (index in block, exclusive cycle prefix sum) relative to the
///    counters saved at block entry. Latency costs (including the
///    per-Imm 1-vs-2-cycle split) are folded at translation time, which
///    is why the translation is specific to one LatencyModel;
///  - adjacent simple ops fuse into one dispatch (FuseCopy*/FuseShlAdd):
///    interior op indices are never control-flow targets and interior
///    ops touch no counters, so merging two ops is invisible to both
///    control flow and the reconstructed counts.
///
/// Superblocks: hot single-predecessor block chains are additionally
/// collapsed into superblock streams (SuperEntry + interior ops with
/// cumulative cold data + Guard side-exits), so interior block
/// boundaries cost nothing. Every block keeps its standalone per-block
/// stream — the superblock is an alternate entry used by resolved edges;
/// the watchdog gate at SuperEntry falls back to the per-block stream
/// whenever the whole chain might not fit in the remaining budget.
///
/// Exactness escape hatches: a block whose code can observe per-
/// instruction state — a statically illegal register operand (the Err
/// latch), an armed fault injector, strict shift trapping, or a watchdog
/// that may fire inside the block — is executed by a per-instruction
/// slow path that mirrors sim::AllocContext::resume line for line (same
/// Err-latch timing, same injector draw order). Everything else runs on
/// the threaded dispatch loop with zero per-instruction bookkeeping.
///
/// Memory-access cycle costs are *not* folded into the cold prefix sums:
/// each memory op carries its flat cost in FastOp::Y, charged into the
/// block-entry cycle base as the op executes. That split is what makes
/// the stream resumable: Engine charges Y itself (standalone soak, flat
/// latency), while SegmentContext (Segment.h) yields to the whole-chip
/// scheduler instead and absorbs whatever contention-dependent charge
/// the caller applied — including spill-window rebasing — keeping the
/// chip's discrete-event schedule bit-identical to the interpreted chip.
///
//===----------------------------------------------------------------------===//

#ifndef FASTPATH_FASTPATH_H
#define FASTPATH_FASTPATH_H

#include "fastpath/BatchMemory.h"
#include "sim/Simulator.h"

#include <cstdint>
#include <string>
#include <vector>

namespace nova {
namespace fastpath {

/// Frame layout: 64 register slots — A at 0 (16), B at 16 (16), L at 32
/// (8), S at 40 (8), LD at 48 (8), SD at 56 (8) — then folded constants.
inline constexpr unsigned FrameRegs = 64;

/// Specialized opcodes of the pre-decoded stream.
enum class FOp : uint8_t {
  BlockEntry, ///< X=block id: watchdog/slow-path gate, saves counters
  AluAdd, AluSub, AluAnd, AluOr, AluXor, AluShl, AluShr, AluNot,
  Copy,       ///< Frame[D] = Frame[A] (Move, and Imm via a const slot)
  Hash,       ///< Frame[D] = hwHash(Frame[A])
  MemRead,    ///< Aux=space, A=addr slot, N dsts at Pool[X]
  MemWrite,   ///< Aux=space, A=addr slot, N srcs at Pool[X]
  BitTestSet, ///< Aux=space, A=addr, B=bits, D=old value
  BranchEq, BranchNe, BranchLt, BranchGt, BranchLe, BranchGe,
              ///< A,B compared; goto op X (then) / Y (else)
  Jump,       ///< goto op X
  Halt,       ///< push N frame slots at Pool[X]; Ok
  TrapStatic, ///< Aux=TrapKind, X=message index; counts from cold data
  SuperEntry, ///< X=head block id, Y=chain max path: superblock gate
  GuardEq, GuardNe, GuardLt, GuardGt, GuardLe, GuardGe,
              ///< superblock side-exit: continue when cmp == Aux,
              ///< else exit to op X with cumulative counts + branch cost
  FuseCopyAdd, FuseCopySub, FuseCopyAnd, FuseCopyOr, FuseCopyXor,
  FuseCopyShl, FuseCopyShr, FuseCopyNot,
              ///< fused pair: Frame[X] = Frame[Y], then the ALU op
              ///< A,B -> D — both writes in program order, one dispatch
  FuseCopyCopy, ///< fused pair: Frame[X] = Frame[Y]; Frame[D] = Frame[A]
  FuseShlAdd,   ///< fused address idiom: D = Frame[X] + (Frame[A]<<Frame[B])
  FuseCopyMemRead, FuseCopyMemWrite,
              ///< Frame[D] = Frame[B], then the memory op (A=addr, N,
              ///< X=pool, Y=cost, Aux=space); carries the memory op's
              ///< cold data — it is a trap and yield point
};

struct FastOp {
  FOp Kind = FOp::TrapStatic;
  uint8_t Aux = 0;  ///< MemSpace for memory ops, TrapKind for TrapStatic,
                    ///< continue-polarity for Guard ops
  uint16_t A = 0;   ///< frame slot: src0 / address
  uint16_t B = 0;   ///< frame slot: src1 / bits
  uint16_t D = 0;   ///< frame slot: destination
  uint32_t N = 0;   ///< word count (MemRead/MemWrite/Halt)
  uint32_t X = 0;   ///< target op / pool offset / message index
  uint32_t Y = 0;   ///< branch else-target op; flat cycle cost for memory
                    ///< ops; chain max path for SuperEntry
};

/// Cold per-op data consulted only on block exits and traps.
struct ColdInfo {
  uint32_t InsDelta = 0;  ///< instructions from block entry through this op
  uint32_t CycPrefix = 0; ///< cycles charged by the ops before this one
};

struct BlockMeta {
  uint32_t FirstOp = 0; ///< index of the block's BlockEntry op
  uint32_t EnterOp = 0; ///< entry from a block boundary: the superblock
                        ///< entry when this block heads a chain, else
                        ///< FirstOp
  uint32_t MaxPath = 0; ///< max instruction count a traversal can consume
  bool ForceSlow = false; ///< statically illegal register operand inside
};

/// Translation knobs. The default — superblocks on — is what both the
/// soak harness and the chip use; the differential fuzz also exercises
/// the plain per-block translation to triangulate.
struct TranslateOptions {
  bool Superblocks = true; ///< collapse single-predecessor chains
  unsigned MaxChain = 32;  ///< longest chain merged into one superblock
};

/// A translated program. Holds a pointer to the source program (for the
/// per-instruction slow path), so the AllocatedProgram must outlive it.
struct Translated {
  const alloc::AllocatedProgram *Prog = nullptr;
  sim::LatencyModel Lat; ///< the model the cycle folding assumed
  std::vector<FastOp> Ops;
  std::vector<ColdInfo> Cold;     ///< parallel to Ops
  std::vector<uint16_t> Pool;     ///< operand lists (frame slots)
  std::vector<uint32_t> Consts;   ///< frame slots FrameRegs..
  std::vector<std::string> Messages;
  std::vector<BlockMeta> Meta;
  bool EntryValid = false;
  unsigned SlowBlocks = 0;    ///< blocks pinned to the slow path
  unsigned Superblocks = 0;   ///< single-predecessor chains collapsed
  unsigned SuperblockOps = 0; ///< ops emitted into superblock streams
  unsigned FusedOps = 0;      ///< adjacent op pairs merged into one dispatch

  unsigned frameSize() const {
    return FrameRegs + static_cast<unsigned>(Consts.size());
  }
};

/// Translates \p P for execution under \p Lat. Never fails: malformed
/// constructs translate to trap ops with the interpreter's exact
/// messages.
Translated translate(const alloc::AllocatedProgram &P,
                     const sim::LatencyModel &Lat);
Translated translate(const alloc::AllocatedProgram &P,
                     const sim::LatencyModel &Lat,
                     const TranslateOptions &Options);

/// Executes a Translated program. Reusable across packets; owns only the
/// register frame.
class Engine {
public:
  explicit Engine(const Translated &T);

  /// Runs one packet: arguments in A0.., memory state in \p Mem.
  /// Opts.Lat must be the model the program was translated with.
  /// Bit-identical to sim::runAllocated on a sim::Memory holding the
  /// same image (the fast path ignores spill rebasing, which
  /// runAllocated never uses either).
  sim::RunResult run(const std::vector<uint32_t> &Args, BatchMemory &Mem,
                     const sim::RunOptions &Opts);

private:
  const Translated *T;
  std::vector<uint32_t> Frame;

  bool slowBlock(uint32_t B, BatchMemory &Mem, const sim::RunOptions &Opts,
                 sim::RunResult &R, uint32_t &NextB);
};

} // namespace fastpath
} // namespace nova

#endif // FASTPATH_FASTPATH_H
