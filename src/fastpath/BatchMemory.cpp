//===- BatchMemory.cpp ----------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "fastpath/BatchMemory.h"

using namespace nova;
using namespace nova::fastpath;

BatchMemory::BatchMemory(const sim::Memory &Base) : Lim(Base.Limits) {
  const sim::WordMap *Maps[3] = {&Base.Sram, &Base.Sdram, &Base.Scratch};
  for (unsigned I = 0; I != 3; ++I) {
    Spc &P = Spaces[I];
    P.Bound = Lim.words(static_cast<MemSpace>(I));
    P.Pages.resize((size_t(P.Bound) + PageMask) >> PageShift);
    for (const auto &[A, V] : *Maps[I])
      P.Base.emplace_hint(P.Base.end(), A, V);
    // Apply the table environment below the journal floor: reset()
    // replays the journal back onto these values, never past them.
    for (const auto &[A, V] : P.Base)
      if (A < P.Bound)
        pageFor(P, A)[A & PageMask] = V;
  }
}

void BatchMemory::storePacket(uint32_t Addr,
                              const std::vector<uint32_t> &Words) {
  Spc &P = Spaces[static_cast<unsigned>(MemSpace::Sdram)];
  for (size_t I = 0; I != Words.size(); ++I) {
    uint32_t A = Addr + static_cast<uint32_t>(I); // wraps like the apps' DMA
    if (A < P.Bound)
      store(MemSpace::Sdram, A, Words[I]);
    else
      P.Overflow[A] = Words[I];
  }
}

void BatchMemory::reset() {
  for (auto It = Journal.rbegin(); It != Journal.rend(); ++It) {
    Spc &P = Spaces[It->Space];
    // The journaled page exists: store() allocated it before journaling.
    P.Pages[It->Addr >> PageShift][It->Addr & PageMask] = It->Old;
  }
  Journal.clear();
  for (Spc &P : Spaces)
    P.Overflow.clear();
}

std::map<uint32_t, uint32_t> BatchMemory::image(MemSpace S) const {
  const Spc &P = Spaces[static_cast<unsigned>(S)];
  std::map<uint32_t, uint32_t> Out = P.Base;
  for (const JEntry &J : Journal)
    if (static_cast<MemSpace>(J.Space) == S)
      Out[J.Addr] = load(S, J.Addr);
  for (const auto &[A, V] : P.Overflow)
    Out[A] = V;
  return Out;
}
