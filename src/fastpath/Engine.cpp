//===- Engine.cpp - Threaded-dispatch execution of translated code --------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Two execution tiers, chosen per block at BlockEntry:
//
//  - the threaded fast tier: computed-goto dispatch over the pre-decoded
//    stream, operands as direct frame indices, no per-instruction
//    counters. Exits (branch/jump/halt/trap) reconstruct the exact
//    interpreter instruction/cycle counts from the per-op cold data
//    relative to the counters saved at block entry;
//
//  - the slow tier (slowBlock): a line-for-line mirror of
//    sim::AllocContext::resume over the original AllocInstrs, taken when
//    the fault injector is armed, strict shift trapping is on, the block
//    has a statically illegal register operand, or the watchdog could
//    fire inside the block. It preserves the interpreter's observable
//    schedule: the Err latch traps at the bottom of the iteration for
//    ALU-class ops but only after the memory charge for memory ops, the
//    bit-flip uses the live instruction count, and the injector's
//    shouldFire/drawCycles call order is unchanged.
//
// The two tiers interleave freely: control returns to BlockEntry at
// every block boundary with exact counters either way.
//
//===----------------------------------------------------------------------===//

#include "fastpath/FastPath.h"

#include "sim/SimUtil.h"
#include "support/FaultInjection.h"
#include "support/HwHash.h"
#include "support/StringUtils.h"

#include <cstring>

using namespace nova;
using namespace nova::fastpath;
using namespace nova::sim::detail;
using alloc::AllocInstr;
using alloc::AOperand;
using alloc::PhysLoc;
using ixp::MOp;

Engine::Engine(const Translated &Tr)
    : T(&Tr), Frame(Tr.frameSize(), 0) {
  std::copy(Tr.Consts.begin(), Tr.Consts.end(), Frame.begin() + FrameRegs);
}

//===----------------------------------------------------------------------===//
// Slow tier: per-instruction execution of one block, interpreter-exact.
//===----------------------------------------------------------------------===//

namespace {
struct RegFile {
  uint32_t *Regs;
  unsigned Size;
};
} // namespace

bool Engine::slowBlock(uint32_t B, BatchMemory &Mem,
                       const sim::RunOptions &Opts, sim::RunResult &R,
                       uint32_t &NextB) {
  const alloc::AllocatedProgram &P = *T->Prog;
  const sim::LatencyModel &Lat = Opts.Lat;
  uint32_t *F = Frame.data();
  bool Err = false;
  const bool Faults = FaultInjector::armed();

  auto file = [&](ixp::Bank Bk) -> RegFile {
    switch (Bk) {
    case ixp::Bank::A:  return {F + 0, 16};
    case ixp::Bank::B:  return {F + 16, 16};
    case ixp::Bank::L:  return {F + 32, 8};
    case ixp::Bank::S:  return {F + 40, 8};
    case ixp::Bank::LD: return {F + 48, 8};
    case ixp::Bank::SD: return {F + 56, 8};
    default:            return {nullptr, 0};
    }
  };
  auto read = [&](const AOperand &O) -> uint32_t {
    if (O.IsConst)
      return O.Value;
    RegFile RF = file(O.Loc.B);
    if (!RF.Regs || O.Loc.Reg >= RF.Size) {
      Err = true;
      return 0;
    }
    return RF.Regs[O.Loc.Reg];
  };
  auto writeReg = [&](PhysLoc L, uint32_t V) {
    RegFile RF = file(L.B);
    if (!RF.Regs || L.Reg >= RF.Size) {
      Err = true;
      return;
    }
    RF.Regs[L.Reg] = V;
  };

  unsigned Idx = 0;
  while (true) {
    if (++R.Instructions > Opts.MaxInstructions) {
      trap(R, sim::TrapKind::Watchdog,
           formatf("instruction budget of %llu exhausted",
                   (unsigned long long)Opts.MaxInstructions));
      return false;
    }
    if (Idx >= P.Blocks[B].Instrs.size()) {
      trap(R, sim::TrapKind::MalformedProgram,
           formatf("fell off the end of block b%u", B));
      return false;
    }
    const AllocInstr &I = P.Blocks[B].Instrs[Idx++];

    if ((I.Op == MOp::MemRead || I.Op == MOp::MemWrite ||
         I.Op == MOp::BitTestSet) &&
        !validSpace(I.Space)) {
      trap(R, sim::TrapKind::IllegalMemSpace,
           formatf("memory space %u in block b%u", (unsigned)I.Space, B));
      return false;
    }

    switch (I.Op) {
    case MOp::Alu: {
      uint32_t A = read(I.Srcs[0]);
      uint32_t Bv = I.Srcs.size() > 1 ? read(I.Srcs[1]) : 0;
      if (Opts.TrapOnShiftRange && cps::shiftOutOfRange(I.Alu, Bv)) {
        trap(R, sim::TrapKind::ShiftRange,
             formatf("shift count %u in block b%u", Bv, B));
        return false;
      }
      uint32_t V = cps::evalPrim(I.Alu, A, Bv);
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::SimBitFlip))
        V ^= 1u << (R.Instructions & 31);
      writeReg(I.Dsts[0], V);
      R.Cycles += Lat.Alu;
      break;
    }
    case MOp::Imm:
      writeReg(I.Dsts[0], I.Imm);
      R.Cycles += I.Imm <= 0xFFFF || (I.Imm & 0xFFFF) == 0 ? Lat.Imm
                                                           : Lat.Imm + 1;
      break;
    case MOp::Move:
      writeReg(I.Dsts[0], read(I.Srcs[0]));
      R.Cycles += Lat.Alu;
      break;
    case MOp::MemRead: {
      uint32_t Addr = read(I.Srcs[0]);
      uint32_t Count = static_cast<uint32_t>(I.Dsts.size());
      if (!Err && !Mem.inRange(I.Space, Addr, Count)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s read of %u words at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Count, Addr,
                     Mem.limits().words(I.Space)));
        return false;
      }
      for (unsigned K = 0; K != I.Dsts.size(); ++K)
        writeReg(I.Dsts[K], Mem.load(I.Space, Addr + K));
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::MemJitter))
        R.Cycles +=
            FaultInjector::instance().drawCycles(FaultKind::MemJitter, 16);
      // The single-threaded driver charges the flat latency right after
      // the Mem yield; an Err latched above traps at the next resume —
      // i.e. at the bottom-of-iteration check below, after this charge.
      R.Cycles += Lat.memAccess(I.Space);
      break;
    }
    case MOp::MemWrite: {
      uint32_t Addr = read(I.Srcs[0]);
      uint32_t Count = static_cast<uint32_t>(I.Srcs.size() - 1);
      if (!Err && !Mem.inRange(I.Space, Addr, Count)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s write of %u words at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Count, Addr,
                     Mem.limits().words(I.Space)));
        return false;
      }
      for (unsigned K = 1; K != I.Srcs.size(); ++K)
        Mem.store(I.Space, Addr + K - 1, read(I.Srcs[K]));
      if (Faults &&
          FaultInjector::instance().shouldFire(FaultKind::MemJitter))
        R.Cycles +=
            FaultInjector::instance().drawCycles(FaultKind::MemJitter, 16);
      R.Cycles += Lat.memAccess(I.Space);
      break;
    }
    case MOp::Hash:
      writeReg(I.Dsts[0], hwHash(read(I.Srcs[0])));
      R.Cycles += Lat.HashOp;
      break;
    case MOp::BitTestSet: {
      uint32_t Addr = read(I.Srcs[0]);
      uint32_t Bits = read(I.Srcs[1]);
      if (!Err && !Mem.inRange(I.Space, Addr, 1)) {
        trap(R, rangeTrapFor(I.Space),
             formatf("%s bit-test-set at 0x%x (limit 0x%x)",
                     spaceName(I.Space), Addr,
                     Mem.limits().words(I.Space)));
        return false;
      }
      uint32_t Old = Mem.load(I.Space, Addr);
      Mem.store(I.Space, Addr, Old | Bits);
      writeReg(I.Dsts[0], Old);
      R.Cycles += Lat.memAccess(I.Space); // no jitter draw for BitTestSet
      break;
    }
    case MOp::Clone:
      trap(R, sim::TrapKind::MalformedProgram,
           "clone pseudo in allocated code");
      return false;
    case MOp::Branch: {
      ixp::BlockId Tgt =
          cps::evalCmp(I.Cmp, read(I.Srcs[0]), read(I.Srcs[1]))
              ? I.Target
              : I.TargetElse;
      if (Tgt >= P.Blocks.size()) {
        trap(R, sim::TrapKind::MalformedProgram,
             formatf("branch in block b%u targets b%u", B, Tgt));
        return false;
      }
      R.Cycles += Lat.Branch;
      if (Err) {
        // The interpreter re-targets B before its bottom-of-iteration
        // check, so the message names the *taken* block.
        trap(R, sim::TrapKind::IllegalRegister,
             formatf("illegal register access in block b%u", Tgt));
        return false;
      }
      NextB = Tgt;
      return true;
    }
    case MOp::Jump:
      if (I.Target >= P.Blocks.size()) {
        trap(R, sim::TrapKind::MalformedProgram,
             formatf("jump in block b%u targets b%u", B, I.Target));
        return false;
      }
      R.Cycles += Lat.Branch;
      NextB = I.Target;
      return true;
    case MOp::Halt:
      for (const AOperand &S : I.Srcs)
        R.HaltValues.push_back(read(S));
      if (Err) {
        trap(R, sim::TrapKind::IllegalRegister,
             "illegal register access at halt");
        return false;
      }
      R.Ok = true;
      return false;
    }
    if (Err) {
      trap(R, sim::TrapKind::IllegalRegister,
           formatf("illegal register access in block b%u", B));
      return false;
    }
  }
}

//===----------------------------------------------------------------------===//
// Fast tier: the threaded dispatch loop.
//===----------------------------------------------------------------------===//

// Computed goto (threaded code) under GCC/Clang; a switch-in-a-loop
// elsewhere. NOVA_FASTPATH_NO_CGOTO forces the portable loop (used to
// compile-test it).
#if (defined(__GNUC__) || defined(__clang__)) && \
    !defined(NOVA_FASTPATH_NO_CGOTO)
#define NOVA_FP_CGOTO 1
#endif

#ifdef NOVA_FP_CGOTO
#define VM_CASE(K) L_##K:
#define VM_DISPATCH() goto *JT[static_cast<unsigned>(Ops[PC].Kind)]
#else
#define VM_CASE(K) case FOp::K:
#define VM_DISPATCH() continue
#endif

sim::RunResult Engine::run(const std::vector<uint32_t> &Args,
                           BatchMemory &Mem, const sim::RunOptions &Opts) {
  sim::RunResult R;
  std::memset(Frame.data(), 0, FrameRegs * sizeof(uint32_t));

  if (!T->EntryValid) {
    trap(R, sim::TrapKind::MalformedProgram, "no entry block");
    return R;
  }
  if (Args.size() > 15) {
    trap(R, sim::TrapKind::MalformedProgram, "too many entry arguments");
    return R;
  }
  for (unsigned I = 0; I != Args.size(); ++I)
    Frame[I] = Args[I];

  const FastOp *Ops = T->Ops.data();
  const ColdInfo *ColdA = T->Cold.data();
  const uint16_t *Pool = T->Pool.data();
  const BlockMeta *Meta = T->Meta.data();
  uint32_t *F = Frame.data();
  const uint64_t MaxIns = Opts.MaxInstructions;
  const unsigned BranchCost = Opts.Lat.Branch;
  const bool SlowAll =
      FaultInjector::armed() || Opts.TrapOnShiftRange;

  // Live counters: exact at every block boundary. Interior fast ops
  // never touch them; exits rebuild them from Start + cold data.
  uint64_t Ins = 0, Cyc = 0;
  uint64_t StartIns = 0, StartCyc = 0;
  uint32_t PC = Meta[T->Prog->Entry].EnterOp;

#ifdef NOVA_FP_CGOTO
  static const void *JT[] = {
      &&L_BlockEntry, &&L_AluAdd,    &&L_AluSub,   &&L_AluAnd,
      &&L_AluOr,      &&L_AluXor,    &&L_AluShl,   &&L_AluShr,
      &&L_AluNot,     &&L_Copy,      &&L_Hash,     &&L_MemRead,
      &&L_MemWrite,   &&L_BitTestSet, &&L_BranchEq, &&L_BranchNe,
      &&L_BranchLt,   &&L_BranchGt,  &&L_BranchLe, &&L_BranchGe,
      &&L_Jump,       &&L_Halt,      &&L_TrapStatic,
      &&L_SuperEntry, &&L_GuardEq,   &&L_GuardNe,  &&L_GuardLt,
      &&L_GuardGt,    &&L_GuardLe,   &&L_GuardGe,
      &&L_FuseCopyAdd, &&L_FuseCopySub, &&L_FuseCopyAnd, &&L_FuseCopyOr,
      &&L_FuseCopyXor, &&L_FuseCopyShl, &&L_FuseCopyShr, &&L_FuseCopyNot,
      &&L_FuseCopyCopy, &&L_FuseShlAdd,
      &&L_FuseCopyMemRead, &&L_FuseCopyMemWrite,
  };
  VM_DISPATCH();
#else
  for (;;)
    switch (Ops[PC].Kind) {
#endif

  VM_CASE(BlockEntry) {
    const FastOp &O = Ops[PC];
    const BlockMeta &M = Meta[O.X];
    if (SlowAll || M.ForceSlow || Ins + M.MaxPath > MaxIns) {
      R.Instructions = Ins;
      R.Cycles = Cyc;
      uint32_t NextB;
      if (!slowBlock(O.X, Mem, Opts, R, NextB))
        return R;
      Ins = R.Instructions;
      Cyc = R.Cycles;
      PC = Meta[NextB].EnterOp;
      VM_DISPATCH();
    }
    StartIns = Ins;
    StartCyc = Cyc;
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(SuperEntry) {
    const FastOp &O = Ops[PC];
    // The chain's whole path must fit in the remaining budget (and the
    // per-instruction escape hatches must be off); otherwise fall back
    // to the head block's own stream, whose BlockEntry gate decides at
    // block granularity.
    if (SlowAll || Ins + O.Y > MaxIns) {
      PC = Meta[O.X].FirstOp;
      VM_DISPATCH();
    }
    StartIns = Ins;
    StartCyc = Cyc;
    ++PC;
    VM_DISPATCH();
  }

#define ALU_CASE(NAME, PRIM)                                              \
  VM_CASE(NAME) {                                                         \
    const FastOp &O = Ops[PC];                                            \
    F[O.D] = cps::evalPrim(cps::PrimOp::PRIM, F[O.A], F[O.B]);            \
    ++PC;                                                                 \
    VM_DISPATCH();                                                        \
  }
  ALU_CASE(AluAdd, Add)
  ALU_CASE(AluSub, Sub)
  ALU_CASE(AluAnd, And)
  ALU_CASE(AluOr, Or)
  ALU_CASE(AluXor, Xor)
  ALU_CASE(AluShl, Shl)
  ALU_CASE(AluShr, Shr)
  ALU_CASE(AluNot, Not)
#undef ALU_CASE

  VM_CASE(Copy) {
    const FastOp &O = Ops[PC];
    F[O.D] = F[O.A];
    ++PC;
    VM_DISPATCH();
  }

// Fused pairs: the leading copy writes before the second op reads, so
// a second op that reads (or overwrites) the copy's destination sees
// exactly the unfused frame state.
#define FUSE_CASE(NAME, PRIM)                                             \
  VM_CASE(FuseCopy##NAME) {                                               \
    const FastOp &O = Ops[PC];                                            \
    F[O.X] = F[O.Y];                                                      \
    F[O.D] = cps::evalPrim(cps::PrimOp::PRIM, F[O.A], F[O.B]);            \
    ++PC;                                                                 \
    VM_DISPATCH();                                                        \
  }
  FUSE_CASE(Add, Add)
  FUSE_CASE(Sub, Sub)
  FUSE_CASE(And, And)
  FUSE_CASE(Or, Or)
  FUSE_CASE(Xor, Xor)
  FUSE_CASE(Shl, Shl)
  FUSE_CASE(Shr, Shr)
  FUSE_CASE(Not, Not)
#undef FUSE_CASE

  VM_CASE(FuseCopyCopy) {
    const FastOp &O = Ops[PC];
    F[O.X] = F[O.Y];
    F[O.D] = F[O.A];
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(FuseShlAdd) {
    const FastOp &O = Ops[PC];
    F[O.D] = cps::evalPrim(cps::PrimOp::Add, F[O.X],
                           cps::evalPrim(cps::PrimOp::Shl, F[O.A], F[O.B]));
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(FuseCopyMemRead) {
    const FastOp &O = Ops[PC];
    F[O.D] = F[O.B]; // leading copy retires before the memory op issues
    MemSpace S = static_cast<MemSpace>(O.Aux);
    uint32_t Addr = F[O.A];
    if (!Mem.inRange(S, Addr, O.N)) {
      const ColdInfo &C = ColdA[PC];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      trap(R, rangeTrapFor(S),
           formatf("%s read of %u words at 0x%x (limit 0x%x)",
                   spaceName(S), O.N, Addr, Mem.limits().words(S)));
      return R;
    }
    const uint16_t *Dst = Pool + O.X;
    for (uint32_t K = 0; K != O.N; ++K)
      F[Dst[K]] = Mem.load(S, Addr + K);
    StartCyc += O.Y;
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(FuseCopyMemWrite) {
    const FastOp &O = Ops[PC];
    F[O.D] = F[O.B];
    MemSpace S = static_cast<MemSpace>(O.Aux);
    uint32_t Addr = F[O.A];
    if (!Mem.inRange(S, Addr, O.N)) {
      const ColdInfo &C = ColdA[PC];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      trap(R, rangeTrapFor(S),
           formatf("%s write of %u words at 0x%x (limit 0x%x)",
                   spaceName(S), O.N, Addr, Mem.limits().words(S)));
      return R;
    }
    const uint16_t *Src = Pool + O.X;
    for (uint32_t K = 0; K != O.N; ++K)
      Mem.store(S, Addr + K, F[Src[K]]);
    StartCyc += O.Y;
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(Hash) {
    const FastOp &O = Ops[PC];
    F[O.D] = hwHash(F[O.A]);
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(MemRead) {
    const FastOp &O = Ops[PC];
    MemSpace S = static_cast<MemSpace>(O.Aux);
    uint32_t Addr = F[O.A];
    if (!Mem.inRange(S, Addr, O.N)) {
      const ColdInfo &C = ColdA[PC];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      trap(R, rangeTrapFor(S),
           formatf("%s read of %u words at 0x%x (limit 0x%x)",
                   spaceName(S), O.N, Addr, Mem.limits().words(S)));
      return R;
    }
    const uint16_t *Dst = Pool + O.X;
    for (uint32_t K = 0; K != O.N; ++K)
      F[Dst[K]] = Mem.load(S, Addr + K);
    StartCyc += O.Y; // flat memory cost: charged only once in range
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(MemWrite) {
    const FastOp &O = Ops[PC];
    MemSpace S = static_cast<MemSpace>(O.Aux);
    uint32_t Addr = F[O.A];
    if (!Mem.inRange(S, Addr, O.N)) {
      const ColdInfo &C = ColdA[PC];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      trap(R, rangeTrapFor(S),
           formatf("%s write of %u words at 0x%x (limit 0x%x)",
                   spaceName(S), O.N, Addr, Mem.limits().words(S)));
      return R;
    }
    const uint16_t *Src = Pool + O.X;
    for (uint32_t K = 0; K != O.N; ++K)
      Mem.store(S, Addr + K, F[Src[K]]);
    StartCyc += O.Y;
    ++PC;
    VM_DISPATCH();
  }

  VM_CASE(BitTestSet) {
    const FastOp &O = Ops[PC];
    MemSpace S = static_cast<MemSpace>(O.Aux);
    uint32_t Addr = F[O.A];
    if (!Mem.inRange(S, Addr, 1)) {
      const ColdInfo &C = ColdA[PC];
      R.Instructions = StartIns + C.InsDelta;
      R.Cycles = StartCyc + C.CycPrefix;
      trap(R, rangeTrapFor(S),
           formatf("%s bit-test-set at 0x%x (limit 0x%x)", spaceName(S),
                   Addr, Mem.limits().words(S)));
      return R;
    }
    uint32_t Old = Mem.load(S, Addr);
    Mem.store(S, Addr, Old | F[O.B]);
    F[O.D] = Old;
    StartCyc += O.Y;
    ++PC;
    VM_DISPATCH();
  }

#define BRANCH_CASE(NAME, CMP)                                            \
  VM_CASE(NAME) {                                                         \
    const FastOp &O = Ops[PC];                                            \
    const ColdInfo &C = ColdA[PC];                                        \
    Ins = StartIns + C.InsDelta;                                          \
    Cyc = StartCyc + C.CycPrefix + BranchCost;                            \
    PC = cps::evalCmp(cps::CmpOp::CMP, F[O.A], F[O.B]) ? O.X : O.Y;       \
    VM_DISPATCH();                                                        \
  }
  BRANCH_CASE(BranchEq, Eq)
  BRANCH_CASE(BranchNe, Ne)
  BRANCH_CASE(BranchLt, Lt)
  BRANCH_CASE(BranchGt, Gt)
  BRANCH_CASE(BranchLe, Le)
  BRANCH_CASE(BranchGe, Ge)
#undef BRANCH_CASE

// Superblock side-exit: fall through to the next op while execution
// stays on the chain; on exit, reconstruct cumulative counts (cold data
// is relative to the SuperEntry) and leave. Aux is the polarity of the
// comparison that continues the chain.
#define GUARD_CASE(NAME, CMP)                                             \
  VM_CASE(NAME) {                                                         \
    const FastOp &O = Ops[PC];                                            \
    if (cps::evalCmp(cps::CmpOp::CMP, F[O.A], F[O.B]) == (O.Aux != 0)) {  \
      ++PC;                                                               \
      VM_DISPATCH();                                                      \
    }                                                                     \
    const ColdInfo &C = ColdA[PC];                                        \
    Ins = StartIns + C.InsDelta;                                          \
    Cyc = StartCyc + C.CycPrefix + BranchCost;                            \
    PC = O.X;                                                             \
    VM_DISPATCH();                                                        \
  }
  GUARD_CASE(GuardEq, Eq)
  GUARD_CASE(GuardNe, Ne)
  GUARD_CASE(GuardLt, Lt)
  GUARD_CASE(GuardGt, Gt)
  GUARD_CASE(GuardLe, Le)
  GUARD_CASE(GuardGe, Ge)
#undef GUARD_CASE

  VM_CASE(Jump) {
    const FastOp &O = Ops[PC];
    const ColdInfo &C = ColdA[PC];
    Ins = StartIns + C.InsDelta;
    Cyc = StartCyc + C.CycPrefix + BranchCost;
    PC = O.X;
    VM_DISPATCH();
  }

  VM_CASE(Halt) {
    const FastOp &O = Ops[PC];
    const ColdInfo &C = ColdA[PC];
    R.Instructions = StartIns + C.InsDelta;
    R.Cycles = StartCyc + C.CycPrefix;
    const uint16_t *Src = Pool + O.X;
    for (uint32_t K = 0; K != O.N; ++K)
      R.HaltValues.push_back(F[Src[K]]);
    R.Ok = true;
    return R;
  }

  VM_CASE(TrapStatic) {
    const FastOp &O = Ops[PC];
    const ColdInfo &C = ColdA[PC];
    R.Instructions = StartIns + C.InsDelta;
    R.Cycles = StartCyc + C.CycPrefix;
    trap(R, static_cast<sim::TrapKind>(O.Aux), T->Messages[O.X]);
    return R;
  }

#ifndef NOVA_FP_CGOTO
    }
#endif
}

#undef VM_CASE
#undef VM_DISPATCH
