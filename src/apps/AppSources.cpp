//===- AppSources.cpp -----------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "apps/AppSources.h"

#include "ref/Aes.h"
#include "ref/Kasumi.h"

using namespace nova;
using namespace nova::apps;

std::array<uint32_t, 4> apps::aesKey() {
  return {0x00010203, 0x04050607, 0x08090A0B, 0x0C0D0E0F};
}

std::array<uint32_t, 4> apps::kasumiKey() {
  return {0x9900AABB, 0xCCDDEEFF, 0x11223344, 0x55667788};
}

//===----------------------------------------------------------------------===//
// AES Rijndael (paper Section 11)
//===----------------------------------------------------------------------===//

std::string apps::aesNovaSource() {
  return R"nova(
// AES-128 fast path: T-table encryption of the packet payload, one
// 16-byte block per loop iteration. The payload starts one word into an
// SDRAM pair (quad-word misaligned, as the paper describes), so a carry
// word threads through the block loop. Tables and the statically
// expanded key schedule live in SRAM; the cipher state stays in
// registers at all times.

layout ip_header = { ver : 4, ihl : 4, tos : 8, total_length : 16,
                     ident : 16, flags : 3, frag : 13,
                     ttl : 8, protocol : 8, checksum : 16,
                     src : 32, dst : 32 };

// Validates the payload size; jumps straight back to the caller's
// handler on the slow path (exceptions as arguments, paper Section 3.4).
fun check_block(len : word, bad : exn (word)) {
  if ((len & 15) != 0) { raise bad (1) };
  if (len == 0) { raise bad (2) };
  len >> 4
}

fun main(pkt : word, outp : word, len : word) {
  try {
    let (h0, h1, h2, h3, h4, h5) = sdram(pkt);
    let ip = unpack[ip_header]((h0, h1, h2, h3, h4));
    if (ip.ver != 4) { raise Bad (3) };
    let blocks = check_block(len, Bad);

    let (k0, k1, k2, k3) = sram(0x1500);
    let carry = h5;
    let inp = pkt + 6;
    let op = outp;
    let csum = 0;
    let b = 0;
    while (b < blocks) {
      let (p0, p1, p2, p3) = sdram(inp);
      let s0 = carry ^ k0;
      let s1 = p0 ^ k1;
      let s2 = p1 ^ k2;
      let s3 = p2 ^ k3;
      carry = p3;
      let rk = 0x1504;
      let round = 0;
      while (round < 9) {
        let (r0, r1, r2, r3) = sram(rk);
        let (a0) = sram(0x1000 + (s0 >> 24));
        let (a1) = sram(0x1100 + ((s1 >> 16) & 0xFF));
        let (a2) = sram(0x1200 + ((s2 >> 8) & 0xFF));
        let (a3) = sram(0x1300 + (s3 & 0xFF));
        let t0 = ((a0 ^ a1) ^ (a2 ^ a3)) ^ r0;
        let (b0) = sram(0x1000 + (s1 >> 24));
        let (b1) = sram(0x1100 + ((s2 >> 16) & 0xFF));
        let (b2) = sram(0x1200 + ((s3 >> 8) & 0xFF));
        let (b3) = sram(0x1300 + (s0 & 0xFF));
        let t1 = ((b0 ^ b1) ^ (b2 ^ b3)) ^ r1;
        let (c0) = sram(0x1000 + (s2 >> 24));
        let (c1) = sram(0x1100 + ((s3 >> 16) & 0xFF));
        let (c2) = sram(0x1200 + ((s0 >> 8) & 0xFF));
        let (c3) = sram(0x1300 + (s1 & 0xFF));
        let t2 = ((c0 ^ c1) ^ (c2 ^ c3)) ^ r2;
        let (d0) = sram(0x1000 + (s3 >> 24));
        let (d1) = sram(0x1100 + ((s0 >> 16) & 0xFF));
        let (d2) = sram(0x1200 + ((s1 >> 8) & 0xFF));
        let (d3) = sram(0x1300 + (s2 & 0xFF));
        let t3 = ((d0 ^ d1) ^ (d2 ^ d3)) ^ r3;
        s0 = t0;
        s1 = t1;
        s2 = t2;
        s3 = t3;
        rk = rk + 4;
        round = round + 1;
      }
      // Final round: SubBytes + ShiftRows + AddRoundKey.
      let (fk0, fk1, fk2, fk3) = sram(rk);
      let (e00) = sram(0x1400 + (s0 >> 24));
      let (e01) = sram(0x1400 + ((s1 >> 16) & 0xFF));
      let (e02) = sram(0x1400 + ((s2 >> 8) & 0xFF));
      let (e03) = sram(0x1400 + (s3 & 0xFF));
      let o0 = (((e00 << 24) | (e01 << 16)) | ((e02 << 8) | e03)) ^ fk0;
      let (e10) = sram(0x1400 + (s1 >> 24));
      let (e11) = sram(0x1400 + ((s2 >> 16) & 0xFF));
      let (e12) = sram(0x1400 + ((s3 >> 8) & 0xFF));
      let (e13) = sram(0x1400 + (s0 & 0xFF));
      let o1 = (((e10 << 24) | (e11 << 16)) | ((e12 << 8) | e13)) ^ fk1;
      let (e20) = sram(0x1400 + (s2 >> 24));
      let (e21) = sram(0x1400 + ((s3 >> 16) & 0xFF));
      let (e22) = sram(0x1400 + ((s0 >> 8) & 0xFF));
      let (e23) = sram(0x1400 + (s1 & 0xFF));
      let o2 = (((e20 << 24) | (e21 << 16)) | ((e22 << 8) | e23)) ^ fk2;
      let (e30) = sram(0x1400 + (s3 >> 24));
      let (e31) = sram(0x1400 + ((s0 >> 16) & 0xFF));
      let (e32) = sram(0x1400 + ((s1 >> 8) & 0xFF));
      let (e33) = sram(0x1400 + (s2 & 0xFF));
      let o3 = (((e30 << 24) | (e31 << 16)) | ((e32 << 8) | e33)) ^ fk3;

      sdram(op) <- (o0, o1);
      sdram(op + 2) <- (o2, o3);
      // Maintain the transport checksum over the ciphertext.
      csum = csum + ((o0 >> 16) + (o0 & 0xFFFF));
      csum = csum + ((o1 >> 16) + (o1 & 0xFFFF));
      csum = csum + ((o2 >> 16) + (o2 & 0xFFFF));
      csum = csum + ((o3 >> 16) + (o3 & 0xFFFF));
      inp = inp + 4;
      op = op + 4;
      b = b + 1;
    }
    csum = (csum & 0xFFFF) + (csum >> 16);
    csum = (csum & 0xFFFF) + (csum >> 16);
    (~csum) & 0xFFFF
  } handle Bad (code : word) { 0xFFFF0000 | code }
}
)nova";
}

//===----------------------------------------------------------------------===//
// Kasumi (paper Section 11)
//===----------------------------------------------------------------------===//

std::string apps::kasumiNovaSource() {
  return R"nova(
// Kasumi fast path: 8-round Feistel over one 64-bit block. S9 lives in
// SRAM, S7 in scratch; the per-round subkeys are packed two-per-word so
// one scratch read fetches all eight 16-bit subkeys of a round (the
// paper's "one scratch read ... for all the 16 subkey elements").

fun fi(x : word, ki : word) -> word {
  let (s9a) = sram(0x2000 + (x >> 7));
  let sv = x & 0x7F;
  let n1 = s9a ^ sv;
  let (s7a) = scratch(0x100 + sv);
  let v1 = s7a ^ (n1 & 0x7F);
  let v2 = v1 ^ (ki >> 9);
  let n2 = (n1 ^ ki) & 0x1FF;
  let (s9b) = sram(0x2000 + n2);
  let n3 = s9b ^ v2;
  let (s7b) = scratch(0x100 + (v2 & 0x7F));
  let v3 = s7b ^ (n3 & 0x7F);
  (v3 << 9) | (n3 & 0x1FF)
}

fun fo(x : word, ko1 : word, ko2 : word, ko3 : word,
       ki1 : word, ki2 : word, ki3 : word) -> word {
  let l0 = x >> 16;
  let r0 = x & 0xFFFF;
  let l1 = fi(l0 ^ ko1, ki1) ^ r0;
  let r1 = fi(r0 ^ ko2, ki2) ^ l1;
  let l2 = fi(l1 ^ ko3, ki3) ^ r1;
  (r1 << 16) | l2
}

fun fl(x : word, kl1 : word, kl2 : word) -> word {
  let l = x >> 16;
  let r = x & 0xFFFF;
  let t1 = l & kl1;
  let r2 = r ^ (((t1 << 1) | (t1 >> 15)) & 0xFFFF);
  let t2 = r2 | kl2;
  let l2 = l ^ (((t2 << 1) | (t2 >> 15)) & 0xFFFF);
  (l2 << 16) | r2
}

fun main(pkt : word, outp : word) {
  try {
    let (hi, lo) = sdram(pkt);
    if (hi == 0 && lo == 0) { raise Empty () };
    let l = hi;
    let r = lo;
    let kb = 0x200;
    let round = 0;
    while (round < 8) {
      let (kw0, kw1, kw2, kw3) = scratch(kb);
      let kl1 = kw0 >> 16;
      let kl2 = kw0 & 0xFFFF;
      let ko1 = kw1 >> 16;
      let ko2 = kw1 & 0xFFFF;
      let ko3 = kw2 >> 16;
      let ki1 = kw2 & 0xFFFF;
      let ki2 = kw3 >> 16;
      let ki3 = kw3 & 0xFFFF;
      let f = 0;
      if ((round & 1) == 0) {
        f = fo(fl(l, kl1, kl2), ko1, ko2, ko3, ki1, ki2, ki3);
      } else {
        f = fl(fo(l, ko1, ko2, ko3, ki1, ki2, ki3), kl1, kl2);
      }
      let nl = r ^ f;
      r = l;
      l = nl;
      kb = kb + 4;
      round = round + 1;
    }
    sdram(outp) <- (l, r);
    if ((l | r) == 0) { raise Degenerate () };
    l ^ r
  } handle Empty () { 0xFFFFFFFF }
    handle Degenerate () { 0xFFFFFFFE }
}
)nova";
}

//===----------------------------------------------------------------------===//
// IPv6 -> IPv4 NAT (paper Section 11)
//===----------------------------------------------------------------------===//

std::string apps::natNovaSource() {
  return R"nova(
// IPv6 -> IPv4 network address translation. The v6 header (40 bytes) is
// parsed with layouts, the v4 header (20 bytes) is built with pack, its
// checksum computed, and the payload shifted: the 20-byte size
// difference leaves every SDRAM pair misaligned, so a carry word threads
// through the copy loop (the paper's "start of the packet must be moved
// to a new location").

layout ipv6_address = { a1 : 32, a2 : 32, a3 : 32, a4 : 32 };

layout ipv6_header = { version : 4, priority : 4, flow_label : 24,
                       payload_length : 16, next_header : 8,
                       hop_limit : 8,
                       src_address : ipv6_address,
                       dst_address : ipv6_address };

layout ipv4_header = { version : 4, ihl : 4, tos : 8, total_length : 16,
                       ident : 16, flags : 3, frag : 13,
                       ttl : 8, protocol : 8, checksum : 16,
                       src : 32, dst : 32 };

fun main(pkt : word, outp : word) {
  try {
    let (h0, h1, h2, h3, h4, h5) = sdram(pkt);
    let (h6, h7, h8, h9) = sdram(pkt + 6);
    let v6 = unpack[ipv6_header]((h0, h1, h2, h3, h4, h5, h6, h7, h8, h9));
    if (v6.version != 6) { raise BadVersion [got = v6.version] };
    if (v6.hop_limit == 0) { raise Expired () };

    let v4len = v6.payload_length + 20;
    let p = pack[ipv4_header] [ version = 4, ihl = 5, tos = v6.priority,
                                total_length = v4len, ident = 0,
                                flags = 2, frag = 0,
                                ttl = v6.hop_limit - 1,
                                protocol = v6.next_header, checksum = 0,
                                src = v6.src_address.a4,
                                dst = v6.dst_address.a4 ];
    // RFC 1071 ones'-complement header checksum.
    let sum = (p.0 >> 16) + (p.0 & 0xFFFF);
    sum = sum + ((p.1 >> 16) + (p.1 & 0xFFFF));
    sum = sum + ((p.2 >> 16) + (p.2 & 0xFFFF));
    sum = sum + ((p.3 >> 16) + (p.3 & 0xFFFF));
    sum = sum + ((p.4 >> 16) + (p.4 & 0xFFFF));
    sum = (sum & 0xFFFF) + (sum >> 16);
    sum = (sum & 0xFFFF) + (sum >> 16);
    let w2 = p.2 | ((~sum) & 0xFFFF);

    // Emit the v4 header; the first payload word rides in the third
    // pair, and the rest is copied through a carry word.
    let (c0, c1) = sdram(pkt + 10);
    sdram(outp) <- (p.0, p.1);
    sdram(outp + 2) <- (w2, p.3);
    sdram(outp + 4) <- (p.4, c0);
    let carry = c1;
    let pairs = (v6.payload_length + 11) >> 3;
    let i = 0;
    while (i < pairs) {
      let (x0, x1) = sdram(pkt + 12 + (i << 1));
      sdram(outp + 6 + (i << 1)) <- (carry, x0);
      carry = x1;
      i = i + 1;
    }
    sdram(outp + 6 + (pairs << 1)) <- (carry, 0);
    v4len
  } handle BadVersion [got : word] { 0xFFFF0000 | got }
    handle Expired () { 0xFFFFFFFE }
}
)nova";
}

//===----------------------------------------------------------------------===//
// Memory environments
//===----------------------------------------------------------------------===//

namespace {

template <typename MapT> void loadAesInto(MapT &Sram) {
  const auto &Te = ref::Aes128::tables();
  for (unsigned T = 0; T != 4; ++T)
    for (unsigned I = 0; I != 256; ++I)
      Sram[MemoryMap::Te0 + T * 0x100 + I] = Te[T][I];
  for (unsigned I = 0; I != 256; ++I)
    Sram[MemoryMap::Sbox + I] = ref::Aes128::sbox()[I];
  ref::Aes128 Aes(aesKey());
  for (unsigned I = 0; I != 44; ++I)
    Sram[MemoryMap::RoundKeys + I] = Aes.roundKeys()[I];
}

template <typename SramT, typename ScratchT>
void loadKasumiInto(SramT &Sram, ScratchT &Scratch) {
  for (unsigned I = 0; I != 512; ++I)
    Sram[MemoryMap::S9 + I] = ref::Kasumi::s9()[I];
  for (unsigned I = 0; I != 128; ++I)
    Scratch[MemoryMap::S7 + I] = ref::Kasumi::s7()[I];
  ref::Kasumi K(kasumiKey());
  for (unsigned R = 0; R != 8; ++R) {
    const auto &Rk = K.roundKeys()[R];
    uint32_t Base = MemoryMap::SubKeys + 4 * R;
    Scratch[Base + 0] = (static_cast<uint32_t>(Rk.KL1) << 16) | Rk.KL2;
    Scratch[Base + 1] = (static_cast<uint32_t>(Rk.KO1) << 16) | Rk.KO2;
    Scratch[Base + 2] = (static_cast<uint32_t>(Rk.KO3) << 16) | Rk.KI1;
    Scratch[Base + 3] = (static_cast<uint32_t>(Rk.KI2) << 16) | Rk.KI3;
  }
}

} // namespace

void apps::loadAesEnvironment(sim::Memory &Mem) { loadAesInto(Mem.Sram); }
void apps::loadAesEnvironment(cps::EvalMemory &Mem) {
  loadAesInto(Mem.Sram);
}

void apps::loadKasumiEnvironment(sim::Memory &Mem) {
  loadKasumiInto(Mem.Sram, Mem.Scratch);
}
void apps::loadKasumiEnvironment(cps::EvalMemory &Mem) {
  loadKasumiInto(Mem.Sram, Mem.Scratch);
}
