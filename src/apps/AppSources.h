//===- AppSources.h - The paper's benchmark applications --------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Nova sources and memory environments for the paper's three benchmark
/// programs (Section 11):
///
///  - AES Rijndael: T-table AES-128 over one 16-byte block per packet,
///    tables and the statically expanded key schedule in SRAM, state kept
///    in registers, IP header parsed via layouts and its checksum
///    maintained;
///  - Kasumi: the 3GPP cipher structure over a 64-bit block, S9 in SRAM,
///    S7 and the packed per-round subkeys in scratch (one scratch read
///    per round fetches all 8 subkey halves, as the paper describes);
///  - NAT: IPv6 -> IPv4 header translation with layout-based field
///    extraction, checksum computation, hop-limit/version error handling
///    through try/handle, and payload shifting (the 20-byte header-size
///    difference makes every SDRAM pair misaligned).
///
/// Sources are generated (the key schedules are baked in as data in
/// memory), and every program is validated bit-for-bit against the
/// reference implementations in src/ref.
///
//===----------------------------------------------------------------------===//

#ifndef APPS_APPSOURCES_H
#define APPS_APPSOURCES_H

#include "cps/Eval.h"
#include "sim/Simulator.h"

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace nova {
namespace apps {

/// Fixed SRAM/scratch memory map of the applications (word addresses).
struct MemoryMap {
  // AES (SRAM)
  static constexpr uint32_t Te0 = 0x1000;
  static constexpr uint32_t Te1 = 0x1100;
  static constexpr uint32_t Te2 = 0x1200;
  static constexpr uint32_t Te3 = 0x1300;
  static constexpr uint32_t Sbox = 0x1400;
  static constexpr uint32_t RoundKeys = 0x1500;
  // Kasumi
  static constexpr uint32_t S9 = 0x2000;  ///< SRAM (paper: S9 in SRAM)
  static constexpr uint32_t S7 = 0x100;   ///< scratch
  static constexpr uint32_t SubKeys = 0x200; ///< scratch, 4 words/round
};

/// The fixed keys the checked-in benchmark programs use.
std::array<uint32_t, 4> aesKey();
std::array<uint32_t, 4> kasumiKey();

/// Nova source text of each application.
std::string aesNovaSource();
std::string kasumiNovaSource();
std::string natNovaSource();

/// Populates the table/key areas of a memory image.
void loadAesEnvironment(sim::Memory &Mem);
void loadKasumiEnvironment(sim::Memory &Mem);

/// Same, for the CPS evaluator's memory.
void loadAesEnvironment(cps::EvalMemory &Mem);
void loadKasumiEnvironment(cps::EvalMemory &Mem);

/// Builds an input packet in SDRAM at \p Addr: \p Payload words preceded
/// by nothing (the apps read payload directly). Word I lands at Addr + I
/// with uint32 wraparound. Templated so it writes the simulator's
/// sim::WordMap and the CPS evaluator's std::map image alike.
template <typename SdramT>
void storePacket(SdramT &Sdram, uint32_t Addr,
                 const std::vector<uint32_t> &Words) {
  for (unsigned I = 0; I != Words.size(); ++I)
    Sdram[Addr + I] = Words[I];
}

} // namespace apps
} // namespace nova

#endif // APPS_APPSOURCES_H
