//===- Supervisor.h - Chip fault model + self-healing policy ----*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The chip's fault model and recovery policy. A FaultSchedule (parsed
/// from `novasoak --fault-schedule kind@rate[~mag],...`) arms five
/// chip-grade fault kinds; the Supervisor decides deterministically when
/// each fires and what recovery costs, while chip::Chip performs the
/// mechanics (context abort/reset, slot re-scrub + re-DMA, typed drops,
/// RX backpressure). Every decision is a pure function of the opportunity
/// ordinal — packet sequence number for per-packet kinds, event-ordered
/// counters for per-transaction kinds — so a (seed, schedule) pair
/// replays bit-identically in both exec modes: the interpreter and the
/// translated fast path yield at the same memory references with the
/// same burst cycles, hence see the same opportunity sequence.
///
/// Detection is a retire-progress watchdog: a periodic supervisor tick
/// scans hardware contexts whose outstanding memory reference never
/// completed (`ctx-lockup` wedges the completion signal) and declares a
/// lockup once the context has made no progress for LockupThreshold
/// cycles. Recovery aborts the context, restores the packet's pristine
/// input state (slot scrub + re-DMA, private image rebuild for
/// quarantined packets, spill-window scrub), and requeues with
/// exponential cycle backoff — bounded by MaxRetries, after which the
/// packet is declared dead and retired in order as a *typed* drop.
/// Every detection, reset, requeue, recovery, and drop is counted in
/// RecoveryStats, surfaced through ChipRunStats and `novasoak --json`.
///
//===----------------------------------------------------------------------===//

#ifndef CHIP_SUPERVISOR_H
#define CHIP_SUPERVISOR_H

#include "support/BinIO.h"
#include "support/FaultInjection.h"

#include <cstdint>

namespace nova {
namespace chip {

/// Why a packet was retired dead by the recovery machinery (as opposed
/// to completing with a trap, which stays a normal app-level drop).
enum class DropReason : uint8_t {
  None,         ///< packet completed normally (halt or app trap)
  Lockup,       ///< context wedged repeatedly; retries exhausted
  Backpressure, ///< RX dropped it after all input rings stayed full
  DmaDrop       ///< ingress DMA lost repeatedly; retries exhausted
};

const char *dropReasonName(DropReason R);

/// Detection/recovery policy knobs. Defaults suit the production-shape
/// soak configs; tests shrink the thresholds to fire quickly.
struct SupervisorConfig {
  /// Cycles between supervisor ticks (watchdog scan + backpressure
  /// check). Only scheduled when a fault schedule is armed, so
  /// fault-free runs stay event-for-event identical to an unsupervised
  /// chip.
  uint64_t WatchdogPeriod = 4096;
  /// A context with an outstanding memory reference and no progress for
  /// this many cycles is declared locked up.
  uint64_t LockupThreshold = 16384;
  /// Requeue attempts after the first wedge before the packet is
  /// declared dead (typed Lockup drop).
  unsigned MaxRetries = 2;
  /// First requeue waits this many cycles; each further retry doubles it.
  uint64_t BackoffBase = 256;
  /// RX parked on uniformly-full rings for this long drops the pending
  /// packet (typed Backpressure drop) instead of waiting unboundedly.
  uint64_t BackpressureThreshold = 32768;
  /// Ingress DMA redo attempts before a typed DmaDrop.
  unsigned DmaRetryLimit = 2;
  /// Cycles an injected brownout window degrades the SDRAM channel.
  uint64_t BrownoutWindow = 2048;
  /// Kind defaults when the schedule entry omits ~magnitude.
  uint64_t DefaultRingStallCycles = 500; ///< ring-stall NAK window
  unsigned DefaultBrownoutFactor = 4;    ///< issue-interval multiplier
  unsigned DefaultLockupAttempts = 1;    ///< attempts that wedge
  unsigned DefaultDmaFailures = 1;       ///< bursts lost per faulted packet
};

/// Typed accounting of everything the fault model injected and the
/// supervisor did about it. Deterministic for a (seed, schedule) pair.
struct RecoveryStats {
  // ctx-lockup
  uint64_t LockupsInjected = 0;  ///< context wedges actually armed
  uint64_t LockupsDetected = 0;  ///< watchdog declarations
  uint64_t CtxResets = 0;        ///< abort+reset recoveries performed
  uint64_t PacketRequeues = 0;   ///< backoff requeues scheduled
  uint64_t PacketsWedged = 0;    ///< distinct packets that wedged >= once
  uint64_t PacketsRecovered = 0; ///< wedged packets that later completed
  uint64_t LockupDrops = 0;      ///< retries exhausted => typed drop
  uint64_t MaxBackoffCycles = 0; ///< largest backoff delay used
  // RX backpressure
  uint64_t BackpressureDrops = 0;
  // ring-stall
  uint64_t RingStallsInjected = 0;
  uint64_t RingStallCycles = 0;
  // chan-brownout
  uint64_t BrownoutsInjected = 0;
  uint64_t BrownoutCycles = 0;
  // dma-drop
  uint64_t DmaFaultsInjected = 0;   ///< bursts silently lost
  uint64_t DmaRetries = 0;          ///< redo attempts performed
  uint64_t DmaFaultPackets = 0;     ///< distinct packets that lost DMA
  uint64_t DmaRecoveredPackets = 0; ///< of those, recovered by redo
  uint64_t DmaDropPackets = 0;      ///< of those, typed-dropped
  // sdram-bitflip (supervisor-invisible; the oracle must catch it)
  uint64_t SdramBitFlipsInjected = 0;

  /// The recovery ledger balances: every packet the fault model touched
  /// is accounted as recovered or as a typed drop.
  bool allAccounted() const {
    return PacketsWedged == PacketsRecovered + LockupDrops &&
           DmaFaultPackets == DmaRecoveredPackets + DmaDropPackets &&
           LockupsDetected == CtxResets;
  }

  /// True when anything at all was injected.
  bool anyInjected() const {
    return LockupsInjected || BackpressureDrops || RingStallsInjected ||
           BrownoutsInjected || DmaFaultsInjected || SdramBitFlipsInjected;
  }

  /// Order-independent digest for double-run equality assertions.
  uint64_t fold() const;

  /// Checkpoint serialization of every counter.
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);
};

/// The policy half of the fault model: owns the armed schedule, decides
/// when kinds fire (pure functions of opportunity ordinals), computes
/// backoff delays, and holds the RecoveryStats ledger the chip's
/// mechanics write into. chip::Chip owns the event-time mechanics.
class Supervisor {
public:
  /// Per-packet fault plan, pure in Seq — ChipSoak's shrinker can
  /// recompute it when replaying a divergence standalone.
  struct PacketPlan {
    unsigned LockupAttempts = 0; ///< initial attempts that wedge
    unsigned DmaFailures = 0;    ///< ingress DMA attempts silently lost
    bool SdramFlip = false;      ///< corrupt one word post-DMA
  };

  Supervisor() = default;
  Supervisor(const FaultSchedule &Sched, const SupervisorConfig &C);

  /// False for an empty schedule: the chip schedules no supervisor
  /// ticks and takes no fault branches, keeping fault-free runs
  /// event-for-event identical to an unsupervised chip.
  bool enabled() const { return Enabled; }
  const SupervisorConfig &config() const { return Cfg; }

  PacketPlan planPacket(uint64_t Seq) const;

  /// Deterministic corruption target for an SdramFlip on packet \p Seq:
  /// word index within the DMA image, and which bit flips.
  static uint32_t flipWordIndex(uint64_t Seq, uint32_t NumWords);
  static uint32_t flipBit(uint64_t Seq);

  /// Counts one ring push attempt chip-wide; nonzero = this attempt
  /// hits an injected stall of that many cycles.
  uint64_t ringStallCycles();

  /// Counts one application SDRAM reference; nonzero = a brownout
  /// window starts with that issue-interval multiplier.
  unsigned brownoutFactor();

  /// Requeue delay before retry number \p Attempt (1-based): BackoffBase
  /// doubled per prior attempt.
  uint64_t backoff(unsigned Attempt) const {
    unsigned Shift = Attempt > 1 ? Attempt - 1 : 0;
    return Cfg.BackoffBase << (Shift > 32 ? 32 : Shift);
  }

  RecoveryStats &stats() { return Rec; }
  const RecoveryStats &stats() const { return Rec; }

  /// Checkpoint serialization of the mutable policy state: the
  /// opportunity ordinals (ring-push and SDRAM-reference counters) and
  /// the RecoveryStats ledger. The armed schedule and config are
  /// construction-time and NOT saved — restore into a Supervisor built
  /// from the same (schedule, config) pair.
  void saveState(BinWriter &W) const;
  void restoreState(BinReader &R);

private:
  struct Entry {
    bool Armed = false;
    uint64_t Rate = 0;
    double Magnitude = 0.0;
  };
  const Entry &entry(FaultKind K) const {
    return Entries[static_cast<unsigned>(K)];
  }

  SupervisorConfig Cfg;
  Entry Entries[12];
  bool Enabled = false;
  uint64_t RingPushCtr = 0;
  uint64_t SdramRefCtr = 0;
  RecoveryStats Rec;
};

} // namespace chip
} // namespace nova

#endif // CHIP_SUPERVISOR_H
