//===- Chip.h - Whole-chip IXP1200 simulation --------------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Full-chip simulation of the paper's deployment shape (Section 2): an
/// RX scheduler shards arriving packets across processing micro-engines
/// through bounded scratch rings; each processing ME multiplexes four
/// hardware contexts, swapping whenever a context issues a memory
/// reference; completions flow through a shared ring to a TX scheduler
/// that retires packets in arrival order. Scratch, SRAM, and SDRAM sit
/// behind per-space transaction channels with finite issue bandwidth, so
/// cross-engine memory contention is a measured quantity (stall cycles),
/// not an assumption.
///
/// The simulation is discrete-event on a single OS thread: a priority
/// queue ordered by (time, insertion sequence) makes every run with the
/// same inputs bit-identical — same RunStats, same ring traces, same
/// final SDRAM image. Context swap is non-preemptive and happens only at
/// memory references (the IXP1200's actual swap points); each ME serves
/// its runnable contexts in FIFO order, so a context parked on a long
/// SDRAM access re-enters at the queue tail and cannot starve.
///
/// Modeling notes (documented simplifications):
///  - Memory *data* effects apply at issue, in deterministic event
///    order; the channel model shapes timing only. Packets cannot
///    observe each other's data anyway: each in-flight packet owns a
///    private SDRAM slot (ChipParams::SlotStride) that RX scrubs and
///    rebases pointer arguments into, and each hardware context owns a
///    private spill window in scratch (AllocContext::setSpillRebase).
///  - Packets whose pointer arguments are too large to rebase (hostile
///    near-limit fuzz) run quarantined: on a private copy of the
///    pristine base image, concurrently with everyone else. Their
///    timing still flows through the shared channels, but their data
///    can neither corrupt nor observe other packets, and they see
///    exactly the fresh memory a standalone oracle run sees.
///  - Ring pushes/pops and spill traffic cost scratch-channel
///    transactions but do not occupy ME issue slots.
///  - MachineParams::MeCount counts *processing* micro-engines. The RX
///    and TX schedulers (which the paper runs on dedicated engines) are
///    modeled as event-driven agents whose DMA and ring traffic contends
///    on the shared channels but who do not execute micro-engine code.
///
//===----------------------------------------------------------------------===//

#ifndef CHIP_CHIP_H
#define CHIP_CHIP_H

#include "alloc/Allocated.h"
#include "chip/Ring.h"
#include "chip/Supervisor.h"
#include "sim/Simulator.h"
#include "support/Status.h"

#include <functional>
#include <memory>
#include <vector>

namespace nova {
namespace chip {

/// Chip-level configuration: the shared machine description plus the
/// queueing/isolation knobs of the whole-chip model.
/// How hardware contexts execute their program between swap points.
/// Both models yield at the same memory references with the same data
/// effects and burst cycles, so the discrete-event schedule — and every
/// stat derived from it — is bit-identical between them.
enum class ExecModel : uint8_t {
  Interp,  ///< sim::AllocContext: resumable per-instruction interpreter
  Threaded ///< fastpath::SegmentContext: resumable translated fast path
};

struct ChipParams {
  ixp::MachineParams MP; ///< topology, clock, latencies, issue intervals

  /// Context execution model (see ExecModel).
  ExecModel Exec = ExecModel::Interp;

  /// Capacity of each RX->ME input ring and of the shared ME->TX ring.
  unsigned RingDepth = 4;
  /// Per-packet instruction watchdog (hostile packets trap => drop).
  uint64_t Budget = 50'000;
  /// SDRAM words per in-flight packet slot. Pointer arguments below the
  /// stride are rebased into the packet's slot; larger ones mark the
  /// packet for quarantined (tail) execution on a private memory image.
  /// A small stride means more concurrent slots, which is what lets
  /// later packets keep the contexts busy while a slow (watchdog-bound)
  /// packet heads the in-order retirement queue.
  uint32_t SlotStride = 0x10000;

  /// Armed chip-grade fault schedule (empty = no faults, no supervisor
  /// ticks: the run is event-for-event identical to an unsupervised
  /// chip). See chip::Supervisor for the fault kinds and policy.
  FaultSchedule Faults;
  /// Detection/recovery thresholds; only consulted when Faults is
  /// non-empty.
  SupervisorConfig Sup;

  /// The single-ME latency model this chip implies (same constants the
  /// standalone simulator reads from MachineParams).
  sim::LatencyModel latency() const {
    sim::LatencyModel L;
    L.Alu = MP.AluCycles;
    L.Branch = MP.BranchCycles;
    L.Imm = MP.ImmCycles;
    L.SramAccess = MP.SramAccessCycles;
    L.SdramAccess = MP.SdramAccessCycles;
    L.ScratchAccess = MP.ScratchAccessCycles;
    L.HashOp = MP.HashCycles;
    return L;
  }

  /// Structural sanity: nonzero topology within supported bounds,
  /// nonzero ring depth, budget, and slot stride.
  Status validate() const;
};

/// One packet entering the chip at RX.
struct ChipPacket {
  uint64_t Seq = 0;                ///< arrival order; retirement reorders to it
  std::vector<uint32_t> Words;     ///< packet image, DMA'd to Args[0]
  std::vector<uint32_t> Args;      ///< entry arguments (A0..)
  uint32_t PtrArgMask = 0;         ///< bit i set => Args[i] is an SDRAM pointer
  unsigned PayloadBytes = 0;       ///< goodput accounting when delivered
  uint8_t ClassTag = 0;            ///< generator class (opaque to the chip)
  uint64_t SeedTag = 0;            ///< generator per-packet seed (opaque)
};

/// A packet leaving the chip at TX, in Seq order.
struct RetiredPacket {
  ChipPacket Pkt;
  std::vector<uint32_t> RebasedArgs; ///< slot-rebased args the run used
  sim::RunResult Result;             ///< per-packet outcome (trap => drop)
  unsigned Me = 0;                   ///< processing ME that ran it
  unsigned Ctx = 0;                  ///< hardware context on that ME
  bool Tail = false; ///< ran quarantined on a private image (unrebased)
  uint32_t SlotBase = 0;             ///< SDRAM slot base (0 for tail)
  uint64_t DispatchTime = 0;         ///< RX began the slot DMA
  uint64_t CompleteTime = 0;         ///< context finished executing
  uint64_t RetireTime = 0;           ///< TX retired it in order
  /// Why the recovery machinery killed it (None = normal completion,
  /// including ordinary app traps). Typed drops carry a default-false
  /// Result and never executed to completion.
  DropReason Drop = DropReason::None;
  /// Execution attempts consumed (1 = clean first run; >1 = the
  /// supervisor requeued it after context lockups).
  unsigned Attempts = 1;
};

struct ChannelStats {
  uint64_t Transactions = 0;
  uint64_t StallCycles = 0; ///< cycles requests waited on channel bandwidth
};

struct RingStats {
  unsigned Capacity = 0;
  unsigned HighWater = 0;
  uint64_t Pushes = 0;
  uint64_t Pops = 0;
  uint64_t TraceHash = 0;
};

/// Whole-run accounting. Every field is deterministic for a given
/// (programs, base memory, packet stream, params).
struct ChipRunStats {
  uint64_t FinalCycles = 0; ///< chip time of the last event processed
  uint64_t PacketsDispatched = 0;
  uint64_t PacketsRetired = 0;
  uint64_t TailPackets = 0;         ///< quarantined near-limit packets
  std::vector<uint64_t> MeBusyCycles;           ///< per processing ME
  std::vector<std::vector<uint64_t>> CtxPackets; ///< [me][ctx] packets run
  ChannelStats Sram, Sdram, Scratch;
  std::vector<RingStats> InputRings; ///< per processing ME
  RingStats TxRing;
  unsigned ReorderHighWater = 0; ///< TX reorder-buffer peak occupancy
  uint64_t RxDmaTransactions = 0;
  ExecModel Exec = ExecModel::Interp; ///< how contexts executed
  uint64_t Superblocks = 0;    ///< chains collapsed (threaded mode only)
  uint64_t SuperblockOps = 0;  ///< ops in superblock streams (threaded)
  /// Fault-injection + supervisor recovery ledger (all zero when no
  /// schedule was armed).
  RecoveryStats Recovery;
  /// Folds the ring trace hashes and the (seq, time) retire sequence;
  /// equal across runs iff the runs interleaved identically.
  uint64_t TraceHash = 0;
  /// True if the event queue drained with work still in flight (a
  /// scheduler bug; tests assert it stays false).
  bool Deadlock = false;

  /// Fraction of chip time ME \p Me spent executing instructions.
  double utilization(unsigned Me) const {
    if (Me >= MeBusyCycles.size() || FinalCycles == 0)
      return 0.0;
    return static_cast<double>(MeBusyCycles[Me]) /
           static_cast<double>(FinalCycles);
  }
  uint64_t totalStallCycles() const {
    return Sram.StallCycles + Sdram.StallCycles + Scratch.StallCycles;
  }
};

/// Checks that \p P is valid and that \p Prog 's spill area can be
/// replicated per hardware context inside the scratch limits, and that
/// the slot geometry fits SDRAM. Call before constructing a Chip.
Status validateChipSetup(const ChipParams &P,
                         const alloc::AllocatedProgram &Prog,
                         const sim::MemLimits &Limits);

/// The chip. Construct with one allocated program per processing ME
/// (typically the same program) and the base memory image (environment
/// tables in SRAM/scratch; SDRAM must hold packet data only — RX scrubs
/// packet slots). run() pulls packets from \p Src until it returns
/// false, streams them through the three-stage pipeline, and hands each
/// retired packet to \p Retire in Seq order.
class Chip {
public:
  /// Fills \p Out with the next packet; returns false at end of stream.
  using Source = std::function<bool(ChipPacket &Out)>;
  using RetireFn = std::function<void(RetiredPacket &&)>;

  Chip(const ChipParams &P,
       std::vector<const alloc::AllocatedProgram *> ProgramPerMe,
       sim::Memory Base);
  ~Chip();
  Chip(const Chip &) = delete;
  Chip &operator=(const Chip &) = delete;

  /// Runs the full stream to retirement. Single-shot: call once.
  ChipRunStats run(const Source &Src, const RetireFn &Retire);

  /// The shared memory image (inspect after run() for the final SDRAM
  /// state; deterministic across same-seed runs).
  sim::Memory &memory();

  /// Called between events whenever the retired-packet count advanced,
  /// with the count and the current chip time. The event loop is
  /// quiescent during the call — every event handler has run to
  /// completion — so saveState() from inside the hook captures a
  /// coherent simulation state. Return true to stop the run right
  /// there (crash-simulation in tests; the process-level kill path
  /// never returns at all).
  using RetireHook = std::function<bool(uint64_t PacketsRetired, uint64_t Time)>;
  void setRetireHook(RetireHook H);

  /// True when the last run() was stopped early by the retire hook —
  /// the returned stats are partial and the run never finalized.
  bool stopped() const;

  /// Checkpoint: serializes the complete mutable simulation state —
  /// event queue and insertion counter, every hardware context, rings,
  /// channels, in-flight and reorder buffers, RX agent, supervisor
  /// ledger, the live memory image, and the stats accumulators. Taken
  /// between events (see RetireHook), a snapshot plus the same packet
  /// source replays the remaining event stream bit-identically.
  /// Construction-time state (programs, translations, topology, the
  /// pristine base image) is NOT saved; restore into a Chip freshly
  /// constructed from the identical (params, programs, base) triple.
  void saveState(BinWriter &W) const;

  /// Restores a saveState() image into this not-yet-run chip; run()
  /// then continues the interrupted event stream. The caller is
  /// responsible for re-arming an equivalent Source positioned at the
  /// serialized dispatch cursor.
  void restoreState(BinReader &R);

private:
  struct Impl;
  std::unique_ptr<Impl> I;
};

} // namespace chip
} // namespace nova

#endif // CHIP_CHIP_H
