//===- Supervisor.cpp - Chip fault model + self-healing policy ------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "chip/Supervisor.h"

#include "chip/Ring.h"

using namespace nova;
using namespace nova::chip;

const char *chip::dropReasonName(DropReason R) {
  switch (R) {
  case DropReason::None:         return "none";
  case DropReason::Lockup:       return "lockup";
  case DropReason::Backpressure: return "backpressure";
  case DropReason::DmaDrop:      return "dma-drop";
  }
  return "unknown";
}

/// SplitMix64 finalizer: the same mixing the FaultInjector's seeded
/// streams use, applied statelessly so per-packet draws are pure in Seq.
static uint64_t mix(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

Supervisor::Supervisor(const FaultSchedule &Sched, const SupervisorConfig &C)
    : Cfg(C) {
  for (const FaultScheduleEntry &E : Sched) {
    Entry &Slot = Entries[static_cast<unsigned>(E.Kind)];
    Slot.Armed = true;
    Slot.Rate = E.Rate;
    Slot.Magnitude = E.Magnitude;
    Enabled = true;
  }
}

Supervisor::PacketPlan Supervisor::planPacket(uint64_t Seq) const {
  PacketPlan Plan;
  const Entry &Lock = entry(FaultKind::CtxLockup);
  if (Lock.Armed && (Seq + 1) % Lock.Rate == 0)
    Plan.LockupAttempts = Lock.Magnitude > 0
                              ? static_cast<unsigned>(Lock.Magnitude)
                              : Cfg.DefaultLockupAttempts;
  const Entry &Dma = entry(FaultKind::DmaDrop);
  if (Dma.Armed && (Seq + 1) % Dma.Rate == 0)
    Plan.DmaFailures = Dma.Magnitude > 0
                           ? static_cast<unsigned>(Dma.Magnitude)
                           : Cfg.DefaultDmaFailures;
  const Entry &Flip = entry(FaultKind::SdramBitFlip);
  if (Flip.Armed && (Seq + 1) % Flip.Rate == 0)
    Plan.SdramFlip = true;
  return Plan;
}

uint32_t Supervisor::flipWordIndex(uint64_t Seq, uint32_t NumWords) {
  if (NumWords == 0)
    return 0;
  return static_cast<uint32_t>(mix(Seq * 2 + 1) % NumWords);
}

uint32_t Supervisor::flipBit(uint64_t Seq) {
  return static_cast<uint32_t>(mix(Seq * 2 + 2) & 31);
}

uint64_t Supervisor::ringStallCycles() {
  const Entry &E = entry(FaultKind::RingStall);
  if (!E.Armed)
    return 0;
  if (++RingPushCtr % E.Rate != 0)
    return 0;
  return E.Magnitude > 0 ? static_cast<uint64_t>(E.Magnitude)
                         : Cfg.DefaultRingStallCycles;
}

unsigned Supervisor::brownoutFactor() {
  const Entry &E = entry(FaultKind::ChanBrownout);
  if (!E.Armed)
    return 0;
  if (++SdramRefCtr % E.Rate != 0)
    return 0;
  unsigned Factor = E.Magnitude > 1 ? static_cast<unsigned>(E.Magnitude)
                                    : Cfg.DefaultBrownoutFactor;
  return Factor;
}

uint64_t RecoveryStats::fold() const {
  uint64_t H = 0xcbf29ce484222325ull;
  const uint64_t Fields[] = {
      LockupsInjected,   LockupsDetected,  CtxResets,
      PacketRequeues,    PacketsWedged,    PacketsRecovered,
      LockupDrops,       MaxBackoffCycles, BackpressureDrops,
      RingStallsInjected, RingStallCycles, BrownoutsInjected,
      BrownoutCycles,    DmaFaultsInjected, DmaRetries,
      DmaFaultPackets,   DmaRecoveredPackets, DmaDropPackets,
      SdramBitFlipsInjected};
  for (uint64_t F : Fields)
    H = traceFold(H, F);
  return H;
}

void RecoveryStats::saveState(BinWriter &W) const {
  const uint64_t Fields[] = {
      LockupsInjected,   LockupsDetected,  CtxResets,
      PacketRequeues,    PacketsWedged,    PacketsRecovered,
      LockupDrops,       MaxBackoffCycles, BackpressureDrops,
      RingStallsInjected, RingStallCycles, BrownoutsInjected,
      BrownoutCycles,    DmaFaultsInjected, DmaRetries,
      DmaFaultPackets,   DmaRecoveredPackets, DmaDropPackets,
      SdramBitFlipsInjected};
  for (uint64_t F : Fields)
    W.u64(F);
}

void RecoveryStats::restoreState(BinReader &R) {
  uint64_t *Fields[] = {
      &LockupsInjected,   &LockupsDetected,  &CtxResets,
      &PacketRequeues,    &PacketsWedged,    &PacketsRecovered,
      &LockupDrops,       &MaxBackoffCycles, &BackpressureDrops,
      &RingStallsInjected, &RingStallCycles, &BrownoutsInjected,
      &BrownoutCycles,    &DmaFaultsInjected, &DmaRetries,
      &DmaFaultPackets,   &DmaRecoveredPackets, &DmaDropPackets,
      &SdramBitFlipsInjected};
  for (uint64_t *F : Fields)
    *F = R.u64();
}

void Supervisor::saveState(BinWriter &W) const {
  W.u64(RingPushCtr);
  W.u64(SdramRefCtr);
  Rec.saveState(W);
}

void Supervisor::restoreState(BinReader &R) {
  RingPushCtr = R.u64();
  SdramRefCtr = R.u64();
  Rec.restoreState(R);
}
