//===- Ring.h - Bounded scratch ring for inter-ME communication -*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A scratch ring: the IXP's bounded circular queue in scratchpad memory,
/// used for inter-micro-engine communication (RX scheduler -> processing
/// MEs, processing MEs -> TX scheduler). This class is the pure data
/// structure — fixed capacity, FIFO order, occupancy high-water mark, and
/// a running trace hash over every operation so two runs can be compared
/// for determinism without storing full traces. Blocking (producers
/// parking on a full ring, consumers on an empty one) is scheduling and
/// lives in chip::Chip; the chip charges each push/pop as a scratch
/// channel transaction.
///
//===----------------------------------------------------------------------===//

#ifndef CHIP_RING_H
#define CHIP_RING_H

#include "support/BinIO.h"

#include <cassert>
#include <cstdint>
#include <vector>

namespace nova {
namespace chip {

/// Folds one 64-bit value into a running FNV-1a-style trace hash.
inline uint64_t traceFold(uint64_t H, uint64_t V) {
  H ^= V;
  H *= 0x100000001b3ull;
  return H;
}

class Ring {
public:
  explicit Ring(unsigned Capacity) : Buf(Capacity) {
    assert(Capacity > 0 && "ring capacity must be positive");
  }

  unsigned capacity() const { return static_cast<unsigned>(Buf.size()); }
  unsigned size() const { return Count; }
  bool empty() const { return Count == 0; }
  bool full() const { return Count == Buf.size(); }
  unsigned highWater() const { return HighWater; }
  uint64_t pushes() const { return Pushes; }
  uint64_t pops() const { return Pops; }

  /// Fault injection: the ring refuses pushes until simulation time
  /// \p Until (a `ring-stall` fault — the scratch controller NAKs the
  /// enqueue). Producers treat a stalled ring exactly like a full one;
  /// the chip schedules a wake at the stall end. Extending an active
  /// stall keeps the later deadline.
  void stallUntil(uint64_t Until) {
    if (Until > StallEnd) {
      StallEnd = Until;
      ++Stalls;
    }
  }

  /// True when a stall is active at time \p Time (pushes must park).
  bool stalled(uint64_t Time) const { return Time < StallEnd; }

  /// The simulation time the current/last stall ends.
  uint64_t stallEnd() const { return StallEnd; }

  /// Number of distinct stall windows injected on this ring.
  uint64_t stalls() const { return Stalls; }

  /// Trace hash over the full operation history: every push and pop
  /// folds (time, op, value, occupancy-after). Two deterministic runs
  /// produce equal hashes; any reordering changes them.
  uint64_t traceHash() const { return Hash; }

  /// Enqueues \p V at simulation time \p Time. Requires !full() — the
  /// chip's scheduler parks producers instead of calling push on a full
  /// ring.
  void push(uint64_t V, uint64_t Time) {
    assert(!full() && "push on full ring");
    Buf[(Head + Count) % Buf.size()] = V;
    ++Count;
    ++Pushes;
    if (Count > HighWater)
      HighWater = Count;
    fold(Time, /*Op=*/0, V);
  }

  /// Dequeues the oldest element at simulation time \p Time. Requires
  /// !empty().
  uint64_t pop(uint64_t Time) {
    assert(!empty() && "pop on empty ring");
    uint64_t V = Buf[Head];
    Head = (Head + 1) % static_cast<unsigned>(Buf.size());
    --Count;
    ++Pops;
    fold(Time, /*Op=*/1, V);
    return V;
  }

  /// Checkpoint serialization of the full ring state (contents, stats,
  /// stall window, trace hash). Capacity is construction-time topology
  /// and is NOT saved — restore into a ring built with the same
  /// capacity.
  void saveState(BinWriter &W) const {
    W.vec64(Buf);
    W.u32(Head);
    W.u32(Count);
    W.u32(HighWater);
    W.u64(Pushes);
    W.u64(Pops);
    W.u64(StallEnd);
    W.u64(Stalls);
    W.u64(Hash);
  }
  void restoreState(BinReader &R) {
    Buf = R.vec64();
    Head = R.u32();
    Count = R.u32();
    HighWater = R.u32();
    Pushes = R.u64();
    Pops = R.u64();
    StallEnd = R.u64();
    Stalls = R.u64();
    Hash = R.u64();
  }

private:
  void fold(uint64_t Time, uint64_t Op, uint64_t V) {
    Hash = traceFold(Hash, Time);
    Hash = traceFold(Hash, Op);
    Hash = traceFold(Hash, V);
    Hash = traceFold(Hash, Count);
  }

  std::vector<uint64_t> Buf;
  unsigned Head = 0;
  unsigned Count = 0;
  unsigned HighWater = 0;
  uint64_t Pushes = 0;
  uint64_t Pops = 0;
  uint64_t StallEnd = 0;
  uint64_t Stalls = 0;
  uint64_t Hash = 0xcbf29ce484222325ull; // FNV offset basis
};

} // namespace chip
} // namespace nova

#endif // CHIP_RING_H
