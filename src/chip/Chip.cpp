//===- Chip.cpp - Whole-chip discrete-event simulation --------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
//
// Event-driven kernel. Everything runs on one OS thread off a priority
// queue ordered by (time, insertion order), so a run is a deterministic
// function of (params, programs, base memory, packet stream). The moving
// parts:
//
//   RX agent      pulls packets from the source, allocates an SDRAM slot,
//                 scrubs it, rebases pointer args into it, DMAs the packet
//                 image (SDRAM issue slots), and pushes a descriptor into
//                 the target ME's input ring (round-robin by sequence).
//   HwCtx         one hardware context: pops a descriptor (scratch txn),
//                 executes via sim::AllocContext — the ME swaps it out at
//                 every memory reference and serves its ready queue FIFO —
//                 then pushes the completion into the shared TX ring.
//   TX agent      drains the TX ring (scratch txns), reorders completions
//                 into arrival order, retires them, and frees slots.
//
// Blocking discipline: rings change state at event time; the issuer pays
// the scratch transaction afterward. A parked party (consumer on empty
// ring, producer on full ring, RX on slots or full rings) is woken by
// scheduling a retry event that re-checks — wakeups can be consumed by a
// faster party, but every state change wakes someone, so nothing is
// lost. Hostile packets whose pointers cannot be rebased into a slot
// run quarantined on a private copy of the pristine base image, so they
// contend for time but are data-isolated and never serialize the chip.
//
//===----------------------------------------------------------------------===//

#include "chip/Chip.h"

#include "fastpath/Segment.h"
#include "sim/ExecContext.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <deque>
#include <map>
#include <queue>
#include <set>

using namespace nova;
using namespace nova::chip;

//===----------------------------------------------------------------------===//
// Validation
//===----------------------------------------------------------------------===//

static Status configError(std::string Msg) {
  return Status::error(StatusCode::InvalidArgument, Phase::Driver,
                       std::move(Msg));
}

Status ChipParams::validate() const {
  if (MP.MeCount < 1 || MP.MeCount > 8)
    return configError(
        formatf("me-count %u out of range 1..8", MP.MeCount));
  if (MP.ContextsPerMe < 1 || MP.ContextsPerMe > 8)
    return configError(
        formatf("contexts %u out of range 1..8", MP.ContextsPerMe));
  if (RingDepth < 1 || RingDepth > 64)
    return configError(
        formatf("ring-depth %u out of range 1..64", RingDepth));
  if (Budget == 0)
    return configError("per-packet budget must be positive");
  if (SlotStride < (1u << 16))
    return configError(
        formatf("slot stride 0x%x below minimum 0x10000", SlotStride));
  if (!(MP.ClockHz > 0))
    return configError("clock must be positive");
  for (const FaultScheduleEntry &E : Faults) {
    if (faultKindDomain(E.Kind) != FaultDomain::Chip)
      return configError(
          formatf("fault kind '%s' is not chip-domain", faultKindName(E.Kind)));
    if (E.Rate < 1)
      return configError(
          formatf("fault rate for '%s' must be >= 1", faultKindName(E.Kind)));
  }
  if (!Faults.empty() &&
      (Sup.WatchdogPeriod == 0 || Sup.LockupThreshold == 0 ||
       Sup.BackoffBase == 0 || Sup.BackpressureThreshold == 0 ||
       Sup.BrownoutWindow == 0))
    return configError("supervisor thresholds must be positive");
  return Status();
}

Status chip::validateChipSetup(const ChipParams &P,
                               const alloc::AllocatedProgram &Prog,
                               const sim::MemLimits &Limits) {
  if (Status S = P.validate(); !S.ok())
    return S;
  if (P.SlotStride > Limits.SdramWords)
    return configError(
        formatf("slot stride 0x%x exceeds SDRAM limit 0x%x", P.SlotStride,
                Limits.SdramWords));
  // Each hardware context gets a private copy of the program's spill
  // window in shared scratch; all of them must fit under the limit.
  uint64_t Step = std::max<uint64_t>(64, Prog.NumSpillSlots);
  uint64_t Total = P.MP.totalContexts();
  uint64_t End = Prog.SpillBase + (Total - 1) * Step + Prog.NumSpillSlots;
  if (End > Limits.ScratchWords)
    return configError(
        formatf("%llu spill windows of %llu words from 0x%x overflow the "
                "scratch limit 0x%x",
                (unsigned long long)Total, (unsigned long long)Step,
                Prog.SpillBase, Limits.ScratchWords));
  return Status();
}

//===----------------------------------------------------------------------===//
// Impl state
//===----------------------------------------------------------------------===//

namespace {

/// A memory channel: finite issue bandwidth (one transaction accepted
/// every IssueInterval cycles), pipelined latency. Queue delay beyond
/// the caller's issue time is recorded as contention stall.
struct Channel {
  unsigned IssueInterval = 1;
  unsigned Latency = 1;
  uint64_t FreeAt = 0;
  ChannelStats St;

  /// Full transaction: returns data-completion time.
  uint64_t submit(uint64_t Now) {
    uint64_t Start = std::max(Now, FreeAt);
    St.StallCycles += Start - Now;
    ++St.Transactions;
    FreeAt = Start + IssueInterval;
    return Start + Latency;
  }

  /// Issue-slot-only transaction (RX DMA streaming: the FIFO engine does
  /// not wait for data return). Returns when the channel accepted it.
  uint64_t submitIssueOnly(uint64_t Now) {
    uint64_t Start = std::max(Now, FreeAt);
    St.StallCycles += Start - Now;
    ++St.Transactions;
    FreeAt = Start + IssueInterval;
    return FreeAt;
  }
};

enum class Ev : uint8_t {
  MeRun,
  CtxResume,
  RxStep,
  TxPopDone,
  SupTick,     ///< supervisor watchdog scan + RX backpressure check
  CtxRestart,  ///< backoff expired: restore packet state, requeue
  BrownoutEnd, ///< SDRAM issue bandwidth recovers
  RingUnstall  ///< a ring-stall window ended; wake parked producers
};

struct Event {
  uint64_t Time = 0;
  uint64_t Order = 0; ///< insertion order: total determinism on time ties
  Ev K = Ev::MeRun;
  unsigned Me = 0;
  unsigned Ctx = 0;
  uint64_t A = 0;
};

struct EventAfter {
  bool operator()(const Event &X, const Event &Y) const {
    if (X.Time != Y.Time)
      return X.Time > Y.Time;
    return X.Order > Y.Order;
  }
};

/// Where a context is in its packet loop (each context has at most one
/// outstanding event, so the phase disambiguates CtxResume).
enum class CtxPh : uint8_t {
  ParkedRing, ///< waiting for its ME's input ring to become nonempty
  PopWait,    ///< input-ring pop scratch transaction in flight
  StartReady, ///< in the ME ready queue, packet not yet started
  RunReady,   ///< in the ME ready queue mid-packet
  MemWait,    ///< swapped out on a memory reference
  PushWait,   ///< TX-ring push scratch transaction in flight
  ParkedTx,   ///< waiting for TX-ring space
  RetryPop,   ///< woken to re-attempt an input-ring pop
  RetryPush,  ///< woken to re-attempt a TX-ring push
  Wedged,     ///< ctx-lockup: the memory completion was lost; only the
              ///< supervisor watchdog can move the context again
  RestartWait ///< aborted by the supervisor; CtxRestart pending (backoff)
};

/// One hardware context: either a resumable interpreter or a resumable
/// fast-path segment executor, behind the same yield contract. Which one
/// is live is a chip-wide choice (ChipParams::Exec), so a plain bool
/// dispatch keeps the event handlers identical for both models.
struct HwCtx {
  sim::AllocContext Exec;
  fastpath::SegmentContext Seg;
  bool Threaded = false;
  CtxPh Ph = CtxPh::ParkedRing;
  uint64_t CurSeq = 0;
  uint64_t WedgeTime = 0; ///< when the lost completion was issued

  void reset(const std::vector<uint32_t> &Args) {
    Threaded ? Seg.reset(Args) : Exec.reset(Args);
  }
  void abort() { Threaded ? Seg.abort() : Exec.abort(); }
  bool done() const { return Threaded ? Seg.done() : Exec.done(); }
  sim::AllocContext::Yield resume(sim::Memory &Mem,
                                  const sim::RunOptions &Opts) {
    return Threaded ? Seg.resume(Mem, Opts) : Exec.resume(Mem, Opts);
  }
  void charge(uint64_t Cycles) {
    Threaded ? Seg.charge(Cycles) : Exec.charge(Cycles);
  }
  sim::RunResult takeResult() {
    return Threaded ? Seg.takeResult() : Exec.takeResult();
  }
};

struct MeState {
  uint64_t FreeAt = 0;
  uint64_t Busy = 0;
  std::deque<unsigned> Ready;
  std::vector<HwCtx> Ctx;
};

struct InFlightRec {
  ChipPacket Pkt;
  std::vector<uint32_t> RebasedArgs;
  sim::RunResult Result;
  unsigned Me = 0, Ctx = 0;
  bool Tail = false;
  uint32_t SlotIdx = 0;
  uint32_t SlotBase = 0;
  uint64_t DispatchTime = 0;
  uint64_t CompleteTime = 0;
  /// Quarantine image for a tail packet: a private copy of the pristine
  /// base memory. Null for slotted packets (they run on shared memory).
  std::unique_ptr<sim::Memory> PrivMem;
  // Fault-injection state (all inert when no schedule is armed).
  unsigned Attempts = 1;        ///< execution attempts started
  unsigned PlannedLockups = 0;  ///< attempts fated to wedge
  bool SdramFlip = false;       ///< corrupt one slot word after DMA
  bool Wedged = false;          ///< wedged at least once
  DropReason Drop = DropReason::None;
};

enum class RxPh : uint8_t { Dispatch, Push };
enum class RxWait : uint8_t { None, Slot, RingFull };

//===----------------------------------------------------------------------===//
// Checkpoint serialization helpers
//===----------------------------------------------------------------------===//

void saveChannel(BinWriter &W, const Channel &C) {
  W.u32(C.IssueInterval);
  W.u32(C.Latency);
  W.u64(C.FreeAt);
  W.u64(C.St.Transactions);
  W.u64(C.St.StallCycles);
}

void restoreChannel(BinReader &R, Channel &C) {
  C.IssueInterval = R.u32();
  C.Latency = R.u32();
  C.FreeAt = R.u64();
  C.St.Transactions = R.u64();
  C.St.StallCycles = R.u64();
}

void savePacket(BinWriter &W, const ChipPacket &Pk) {
  W.u64(Pk.Seq);
  W.vec32(Pk.Words);
  W.vec32(Pk.Args);
  W.u32(Pk.PtrArgMask);
  W.u32(Pk.PayloadBytes);
  W.u8(Pk.ClassTag);
  W.u64(Pk.SeedTag);
}

void restorePacket(BinReader &R, ChipPacket &Pk) {
  Pk.Seq = R.u64();
  Pk.Words = R.vec32();
  Pk.Args = R.vec32();
  Pk.PtrArgMask = R.u32();
  Pk.PayloadBytes = R.u32();
  Pk.ClassTag = R.u8();
  Pk.SeedTag = R.u64();
}

void saveRec(BinWriter &W, const InFlightRec &Rec) {
  savePacket(W, Rec.Pkt);
  W.vec32(Rec.RebasedArgs);
  Rec.Result.saveState(W);
  W.u32(Rec.Me);
  W.u32(Rec.Ctx);
  W.b(Rec.Tail);
  W.u32(Rec.SlotIdx);
  W.u32(Rec.SlotBase);
  W.u64(Rec.DispatchTime);
  W.u64(Rec.CompleteTime);
  W.b(Rec.PrivMem != nullptr);
  if (Rec.PrivMem)
    Rec.PrivMem->saveState(W);
  W.u32(Rec.Attempts);
  W.u32(Rec.PlannedLockups);
  W.b(Rec.SdramFlip);
  W.b(Rec.Wedged);
  W.u8(static_cast<uint8_t>(Rec.Drop));
}

void restoreRec(BinReader &R, InFlightRec &Rec) {
  restorePacket(R, Rec.Pkt);
  Rec.RebasedArgs = R.vec32();
  Rec.Result.restoreState(R);
  Rec.Me = R.u32();
  Rec.Ctx = R.u32();
  Rec.Tail = R.b();
  Rec.SlotIdx = R.u32();
  Rec.SlotBase = R.u32();
  Rec.DispatchTime = R.u64();
  Rec.CompleteTime = R.u64();
  if (R.b()) {
    Rec.PrivMem = std::make_unique<sim::Memory>();
    Rec.PrivMem->restoreState(R);
  } else {
    Rec.PrivMem.reset();
  }
  Rec.Attempts = R.u32();
  Rec.PlannedLockups = R.u32();
  Rec.SdramFlip = R.b();
  Rec.Wedged = R.b();
  Rec.Drop = static_cast<DropReason>(R.u8());
}

void saveRecMap(BinWriter &W, const std::map<uint64_t, InFlightRec> &M) {
  W.u64(M.size());
  for (const auto &[Seq, Rec] : M) {
    W.u64(Seq);
    saveRec(W, Rec);
  }
}

void restoreRecMap(BinReader &R, std::map<uint64_t, InFlightRec> &M) {
  M.clear();
  uint64_t N = R.u64();
  for (uint64_t I = 0; I != N && !R.failed(); ++I) {
    uint64_t Seq = R.u64();
    InFlightRec Rec;
    restoreRec(R, Rec);
    M.emplace(Seq, std::move(Rec));
  }
}

} // namespace

struct Chip::Impl {
  ChipParams P;
  std::vector<const alloc::AllocatedProgram *> Progs;
  /// Threaded mode: each unique program translated once, shared by every
  /// context that runs it (the map keeps addresses stable).
  std::map<const alloc::AllocatedProgram *, fastpath::Translated> Trans;
  sim::Memory Mem;
  /// Pristine copy of the base image; quarantined tail packets run on a
  /// private copy of this (never of the live, packet-dirtied Mem).
  sim::Memory BaseImage;
  sim::RunOptions Opts;

  Channel SramCh, SdramCh, ScratchCh;
  std::vector<MeState> Mes;
  std::vector<Ring> In;                         ///< per-ME input ring
  std::vector<std::deque<unsigned>> Consumers;  ///< per-ME parked contexts
  Ring Tx;
  bool TxIdle = true;
  std::deque<std::pair<unsigned, unsigned>> TxProducers;

  std::map<uint64_t, InFlightRec> InFlight;
  std::map<uint64_t, InFlightRec> Reorder;
  uint64_t NextRetire = 0;
  uint64_t NextDispatch = 0;
  std::set<uint32_t> FreeSlots;
  uint64_t InFlightCount = 0;

  // RX agent
  RxPh RxPhase = RxPh::Dispatch;
  RxWait RxWaiting = RxWait::None;
  bool RxDone = false, RxHave = false;
  bool RxPktTail = false;
  ChipPacket RxPkt;
  uint64_t RxPendSeq = 0;
  unsigned RxTarget = 0;
  uint64_t RxGen = 0;

  // Fault model + recovery policy (inert when the schedule is empty).
  Supervisor Sup;
  uint32_t SpillStep = 64;       ///< per-context spill window stride
  unsigned SdramBaseInterval = 1; ///< pristine issue interval (brownouts)
  bool BrownoutActive = false;
  bool RxStuck = false;          ///< parked on uniformly-full rings
  uint64_t RxStuckSince = 0;

  /// The event queue with its container exposed: the heap vector is a
  /// deterministic function of the run and is a valid heap verbatim, so
  /// checkpointing saves and restores it as-is.
  struct ExposedQ
      : std::priority_queue<Event, std::vector<Event>, EventAfter> {
    std::vector<Event> &raw() { return c; }
    const std::vector<Event> &raw() const { return c; }
  };
  ExposedQ Q;
  uint64_t OrderCtr = 0;
  uint64_t LastTime = 0;
  bool Ran = false;

  const Source *Src = nullptr;
  const RetireFn *Retire = nullptr;

  // Checkpoint plumbing: the retire hook fires between events whenever
  // PacketsRetired advanced; Restored makes runAll continue a restored
  // event stream instead of scheduling the initial RX/supervisor events.
  RetireHook Hook;
  uint64_t LastHookRetired = 0;
  bool Restored = false;
  bool Stopped = false;

  ChipRunStats St;
  uint64_t RetireFold = 0xcbf29ce484222325ull;

  Impl(const ChipParams &Params,
       std::vector<const alloc::AllocatedProgram *> Programs,
       sim::Memory Base)
      : P(Params), Progs(std::move(Programs)), Mem(std::move(Base)),
        BaseImage(Mem), Tx(Params.RingDepth) {
    assert(P.validate().ok() && "invalid ChipParams (see validateChipSetup)");
    assert(Progs.size() == P.MP.MeCount && "one program per processing ME");
    Opts.Lat = P.latency();
    Opts.MaxInstructions = P.Budget;

    SramCh = {P.MP.SramIssueInterval, P.MP.SramAccessCycles, 0, {}};
    SdramCh = {P.MP.SdramIssueInterval, P.MP.SdramAccessCycles, 0, {}};
    ScratchCh = {P.MP.ScratchIssueInterval, P.MP.ScratchAccessCycles, 0, {}};

    Sup = Supervisor(P.Faults, P.Sup);
    SdramBaseInterval = P.MP.SdramIssueInterval;

    // Every context gets a disjoint spill window; one step for the whole
    // chip keeps the geometry independent of which ME runs which program.
    uint32_t Step = 64;
    for (const alloc::AllocatedProgram *Pr : Progs)
      Step = std::max<uint32_t>(Step, Pr->NumSpillSlots);
    SpillStep = Step;

    if (P.Exec == ExecModel::Threaded)
      for (const alloc::AllocatedProgram *Pr : Progs)
        if (!Trans.count(Pr))
          Trans.emplace(Pr, fastpath::translate(*Pr, Opts.Lat));

    Mes.resize(P.MP.MeCount);
    Consumers.resize(P.MP.MeCount);
    for (unsigned M = 0; M != P.MP.MeCount; ++M) {
      In.emplace_back(P.RingDepth);
      Mes[M].Ctx.resize(P.MP.ContextsPerMe);
      for (unsigned C = 0; C != P.MP.ContextsPerMe; ++C) {
        HwCtx &Cx = Mes[M].Ctx[C];
        uint32_t Rebase = (M * P.MP.ContextsPerMe + C) * Step;
        if (P.Exec == ExecModel::Threaded) {
          Cx.Threaded = true;
          Cx.Seg.setProgram(&Trans.at(Progs[M]));
          Cx.Seg.setSpillRebase(Rebase);
        } else {
          Cx.Exec.setProgram(Progs[M]);
          Cx.Exec.setSpillRebase(Rebase);
        }
        Consumers[M].push_back(C); // all contexts start parked, in order
      }
    }

    // In-flight slots: the window of packets that can be in the chip at
    // once. Slots recycle at TX pop, so the pool needs to cover the
    // contexts plus the queued descriptors, with headroom for completed
    // packets waiting in the reorder buffer behind a slow head.
    uint32_t ByMem = Mem.Limits.SdramWords / P.SlotStride;
    uint32_t Wanted =
        4 * P.MP.MeCount * (P.MP.ContextsPerMe + P.RingDepth) + 64;
    uint32_t NumSlots = std::max(1u, std::min(ByMem, Wanted));
    for (uint32_t S = 0; S != NumSlots; ++S)
      FreeSlots.insert(S);

    St.MeBusyCycles.assign(P.MP.MeCount, 0);
    St.CtxPackets.assign(P.MP.MeCount,
                         std::vector<uint64_t>(P.MP.ContextsPerMe, 0));
  }

  void sched(uint64_t T, Ev K, unsigned Me = 0, unsigned Ctx = 0,
             uint64_t A = 0) {
    Q.push({T, ++OrderCtr, K, Me, Ctx, A});
  }

  Channel &chan(MemSpace S) {
    switch (S) {
    case MemSpace::Sram:    return SramCh;
    case MemSpace::Sdram:   return SdramCh;
    case MemSpace::Scratch: return ScratchCh;
    }
    assert(false && "invalid MemSpace reached the channel model");
    return SramCh;
  }

  void scrubSdram(uint32_t Lo, uint64_t Hi) { Mem.Sdram.eraseRange(Lo, Hi); }

  //===--- RX agent --------------------------------------------------------===//

  void schedRx(uint64_t T) { sched(T, Ev::RxStep, 0, 0, ++RxGen); }

  bool pktNeedsTail(const ChipPacket &Pk) const {
    for (unsigned I = 0; I != Pk.Args.size() && I < 32; ++I)
      if ((Pk.PtrArgMask >> I) & 1 && Pk.Args[I] >= P.SlotStride)
        return true;
    return false;
  }

  void rxStep(uint64_t T, uint64_t Gen) {
    if (Gen != RxGen || RxDone)
      return; // stale wakeup
    if (RxPhase == RxPh::Dispatch)
      rxDispatch(T);
    else
      rxPush(T);
  }

  void rxDispatch(uint64_t T) {
    if (!RxHave) {
      ChipPacket Pk;
      if (!(*Src)(Pk)) {
        RxDone = true;
        return;
      }
      assert(Pk.Seq == NextDispatch && "packet Seq must be 0,1,2,...");
      ++NextDispatch;
      RxPkt = std::move(Pk);
      RxHave = true;
      RxPktTail = pktNeedsTail(RxPkt);
    }
    InFlightRec Rec;
    if (RxPktTail) {
      // Quarantine: pointers we cannot rebase run at their original
      // addresses on a private copy of the pristine base image. The
      // packet contends for channels and contexts like any other but is
      // data-isolated by construction, so it neither drains the chip
      // nor consumes an SDRAM slot.
      Rec.Tail = true;
      Rec.SlotIdx = 0;
      Rec.SlotBase = 0;
      Rec.PrivMem = std::make_unique<sim::Memory>(BaseImage);
      Rec.RebasedArgs = RxPkt.Args;
      ++St.TailPackets;
    } else {
      if (FreeSlots.empty()) {
        RxWaiting = RxWait::Slot;
        return;
      }
      Rec.SlotIdx = *FreeSlots.begin();
      FreeSlots.erase(FreeSlots.begin());
      Rec.SlotBase = Rec.SlotIdx * P.SlotStride;
      scrubSdram(Rec.SlotBase, uint64_t(Rec.SlotBase) + P.SlotStride);
      Rec.RebasedArgs = RxPkt.Args;
      for (unsigned I = 0; I != Rec.RebasedArgs.size() && I < 32; ++I)
        if ((RxPkt.PtrArgMask >> I) & 1)
          Rec.RebasedArgs[I] += Rec.SlotBase;
    }

    Rec.DispatchTime = T;
    RxPendSeq = RxPkt.Seq;
    Rec.Pkt = std::move(RxPkt);

    // Per-packet fault plan: pure in Seq, so a divergence replayed
    // standalone sees the same corruption.
    bool DmaLost = false;
    if (Sup.enabled()) {
      Supervisor::PacketPlan Plan = Sup.planPacket(Rec.Pkt.Seq);
      Rec.PlannedLockups = Plan.LockupAttempts;
      Rec.SdramFlip = Plan.SdramFlip;
      DmaLost = !rxDma(Rec, T, Plan.DmaFailures);
    } else {
      (void)rxDma(Rec, T, 0);
    }
    uint64_t Td = RxDmaEnd;

    if (DmaLost) {
      // The packet image never made it into memory: a typed ingress
      // drop, retired in arrival order like every other packet.
      if (!Rec.Tail)
        FreeSlots.insert(Rec.SlotIdx);
      Rec.PrivMem.reset();
      Rec.Drop = DropReason::DmaDrop;
      Rec.Result = sim::RunResult();
      Rec.Result.Ok = false;
      Rec.CompleteTime = Td;
      ++St.PacketsDispatched;
      ++Sup.stats().DmaDropPackets;
      Reorder.emplace(Rec.Pkt.Seq, std::move(Rec));
      St.ReorderHighWater = std::max(
          St.ReorderHighWater, static_cast<unsigned>(Reorder.size()));
      drainReorder(Td);
      RxHave = false;
      RxPhase = RxPh::Dispatch;
      schedRx(Td);
      return;
    }

    InFlight.emplace(RxPendSeq, std::move(Rec));
    ++InFlightCount;
    ++St.PacketsDispatched;

    RxPhase = RxPh::Push;
    schedRx(Td);
  }

  /// One DMA burst set's issue-slot cost (the FIFO engine streams — no
  /// latency wait — but contends for SDRAM issue bandwidth).
  uint64_t chargeDmaBursts(size_t NumWords, uint64_t T) {
    unsigned Bursts = (static_cast<unsigned>(NumWords) + 7) / 8;
    uint64_t Td = T;
    for (unsigned I = 0; I != Bursts; ++I)
      Td = SdramCh.submitIssueOnly(Td);
    St.RxDmaTransactions += Bursts;
    return Td;
  }

  /// DMA completion time of the last rxDma/restart transfer.
  uint64_t RxDmaEnd = 0;

  /// DMAs the packet image into its slot (or private image), surviving
  /// \p Failures silently-lost attempts via the RX engine's completion
  /// count check: each lost burst set is re-issued, up to DmaRetryLimit
  /// redos. Returns false when the image is lost for good. Applies the
  /// packet's planned SdramBitFlip after a successful transfer (the
  /// corruption happens on the wire, every time the data moves).
  bool rxDma(InFlightRec &Rec, uint64_t T, unsigned Failures) {
    uint64_t Td = T;
    RxDmaEnd = T;
    if (Rec.Pkt.Words.empty() || Rec.RebasedArgs.empty())
      return true; // nothing to transfer; nothing can be lost
    RecoveryStats &RS = Sup.stats();
    if (Failures) {
      ++RS.DmaFaultPackets;
      RS.DmaFaultsInjected += Failures;
    }
    unsigned MaxAttempts = Sup.config().DmaRetryLimit + 1;
    for (unsigned A = 1; A <= Failures; ++A) {
      // Lost in flight: the engine streamed the burst set (issue slots
      // burned) but the data vanished; the completion check notices.
      Td = chargeDmaBursts(Rec.Pkt.Words.size(), Td);
      if (A == MaxAttempts) {
        RxDmaEnd = Td;
        return false;
      }
      ++RS.DmaRetries;
    }
    Td = chargeDmaBursts(Rec.Pkt.Words.size(), Td);
    sim::Memory &DM = Rec.PrivMem ? *Rec.PrivMem : Mem;
    uint32_t Base = Rec.RebasedArgs[0];
    for (uint32_t I = 0; I != Rec.Pkt.Words.size(); ++I)
      DM.Sdram[Base + I] = Rec.Pkt.Words[I]; // mirrors apps::storePacket
    if (Rec.SdramFlip) {
      uint32_t NumWords = static_cast<uint32_t>(Rec.Pkt.Words.size());
      uint32_t W = Supervisor::flipWordIndex(Rec.Pkt.Seq, NumWords);
      uint32_t B = Supervisor::flipBit(Rec.Pkt.Seq);
      DM.Sdram[Base + W] = Rec.Pkt.Words[W] ^ (1u << B);
      ++RS.SdramBitFlipsInjected;
    }
    if (Failures)
      ++RS.DmaRecoveredPackets;
    RxDmaEnd = Td;
    return true;
  }

  void rxPush(uint64_t T) {
    // Least-occupied input ring wins, scanning from the packet's natural
    // round-robin position so ties rotate across engines. Picking at
    // push time (not dispatch) and by load (not sequence) keeps one slow
    // engine's full ring from head-of-line-blocking the whole RX stage.
    // A stalled ring (injected NAK window) counts as full in the scan.
    auto EffSize = [&](unsigned M) {
      return In[M].stalled(T) ? In[M].capacity() : In[M].size();
    };
    RxTarget = static_cast<unsigned>(RxPendSeq % P.MP.MeCount);
    for (unsigned I = 1; I != P.MP.MeCount; ++I) {
      unsigned M =
          static_cast<unsigned>((RxPendSeq + I) % P.MP.MeCount);
      if (EffSize(M) < EffSize(RxTarget))
        RxTarget = M;
    }
    Ring &Rg = In[RxTarget];
    maybeStallRing(Rg, RxTarget, T);
    if (Rg.full() || Rg.stalled(T)) {
      // least-occupied is full => every ring is full (or NAKing)
      RxWaiting = RxWait::RingFull;
      if (!RxStuck) {
        RxStuck = true;
        RxStuckSince = T;
      }
      return;
    }
    Rg.push(RxPendSeq, T);
    RxStuck = false;
    wakeOneConsumer(RxTarget, T);
    uint64_t Tc = ScratchCh.submit(T);
    RxHave = false;
    RxPhase = RxPh::Dispatch;
    schedRx(Tc);
  }

  /// Counts one push attempt against the ring-stall schedule; when it
  /// fires, ring \p Id (MeCount = the TX ring) NAKs pushes for the
  /// injected window and a wake is scheduled at the stall end.
  void maybeStallRing(Ring &Rg, unsigned Id, uint64_t T) {
    if (!Sup.enabled())
      return;
    uint64_t Cycles = Sup.ringStallCycles();
    if (!Cycles)
      return;
    Rg.stallUntil(T + Cycles);
    RecoveryStats &RS = Sup.stats();
    ++RS.RingStallsInjected;
    RS.RingStallCycles += Cycles;
    sched(Rg.stallEnd(), Ev::RingUnstall, Id);
  }

  void wakeRxIfSlotFreed(uint64_t T) {
    if (RxWaiting == RxWait::Slot && !FreeSlots.empty()) {
      RxWaiting = RxWait::None;
      schedRx(T);
    }
  }

  void wakeRxIfRingFreed(unsigned Me, uint64_t T) {
    // RX only parks on RingFull when every ring is full, so any pop is a
    // valid wake; the retry re-picks the least-occupied target.
    (void)Me;
    if (RxWaiting == RxWait::RingFull) {
      RxWaiting = RxWait::None;
      schedRx(T);
    }
  }

  //===--- Context packet loop ----------------------------------------------===//

  void wakeOneConsumer(unsigned Me, uint64_t T) {
    if (Consumers[Me].empty())
      return;
    unsigned C = Consumers[Me].front();
    Consumers[Me].pop_front();
    Mes[Me].Ctx[C].Ph = CtxPh::RetryPop;
    sched(T, Ev::CtxResume, Me, C);
  }

  void wantPop(unsigned Me, unsigned C, uint64_t T) {
    HwCtx &Cx = Mes[Me].Ctx[C];
    Ring &Rg = In[Me];
    if (Rg.empty()) {
      Cx.Ph = CtxPh::ParkedRing;
      Consumers[Me].push_back(C);
      return;
    }
    Cx.CurSeq = Rg.pop(T);
    wakeRxIfRingFreed(Me, T);
    Cx.Ph = CtxPh::PopWait;
    sched(ScratchCh.submit(T), Ev::CtxResume, Me, C);
  }

  void wantPushTx(unsigned Me, unsigned C, uint64_t T) {
    HwCtx &Cx = Mes[Me].Ctx[C];
    maybeStallRing(Tx, P.MP.MeCount, T);
    if (Tx.full() || Tx.stalled(T)) {
      Cx.Ph = CtxPh::ParkedTx;
      TxProducers.emplace_back(Me, C);
      return;
    }
    Tx.push(Cx.CurSeq, T);
    Cx.Ph = CtxPh::PushWait;
    sched(ScratchCh.submit(T), Ev::CtxResume, Me, C);
    if (TxIdle)
      txStartPop(T);
  }

  void ctxReady(unsigned Me, unsigned C, uint64_t T) {
    Mes[Me].Ready.push_back(C);
    sched(std::max(T, Mes[Me].FreeAt), Ev::MeRun, Me);
  }

  void onCtxResume(unsigned Me, unsigned C, uint64_t T) {
    HwCtx &Cx = Mes[Me].Ctx[C];
    switch (Cx.Ph) {
    case CtxPh::PopWait:
      Cx.Ph = CtxPh::StartReady;
      ctxReady(Me, C, T);
      break;
    case CtxPh::MemWait:
      Cx.Ph = CtxPh::RunReady;
      ctxReady(Me, C, T);
      break;
    case CtxPh::PushWait:
    case CtxPh::RetryPop:
      wantPop(Me, C, T);
      break;
    case CtxPh::RetryPush:
      wantPushTx(Me, C, T);
      break;
    default:
      assert(false && "CtxResume in an unexpected phase");
    }
  }

  void onMeRun(unsigned Me, uint64_t T) {
    MeState &M = Mes[Me];
    if (M.FreeAt > T || M.Ready.empty())
      return; // still busy, or a duplicate wakeup already served
    unsigned C = M.Ready.front();
    M.Ready.pop_front();
    HwCtx &Cx = M.Ctx[C];

    InFlightRec &Rec = InFlight.at(Cx.CurSeq);
    if (Cx.Ph == CtxPh::StartReady) {
      Rec.Me = Me;
      Rec.Ctx = C;
      Cx.reset(Rec.RebasedArgs);
      Cx.Ph = CtxPh::RunReady;
    }

    uint64_t End = T;
    if (!Cx.done()) {
      // Quarantined tail packets execute against their private image;
      // everyone else shares the chip's memory.
      sim::AllocContext::Yield Y =
          Cx.resume(Rec.PrivMem ? *Rec.PrivMem : Mem, Opts);
      End = T + Y.Cycles;
      M.Busy += Y.Cycles;
      St.MeBusyCycles[Me] += Y.Cycles;
      M.FreeAt = End;
      sched(End, Ev::MeRun, Me); // serve the next ready context
      if (Y.K == sim::AllocContext::Yield::Kind::Mem) {
        // The swap point: issue the reference, park the context until
        // the data returns, and let another context have the engine.
        if (Sup.enabled() && Y.Space == MemSpace::Sdram)
          maybeBrownout(End);
        uint64_t Tc = chan(Y.Space).submit(End);
        Cx.charge(Tc - End); // latency + queueing delay
        if (Sup.enabled() && Rec.PlannedLockups >= Rec.Attempts) {
          // ctx-lockup: the reference went out but its completion
          // signal is lost — the context freezes with no resume event;
          // only the supervisor's watchdog can recover it.
          RecoveryStats &RS = Sup.stats();
          ++RS.LockupsInjected;
          if (!Rec.Wedged) {
            Rec.Wedged = true;
            ++RS.PacketsWedged;
          }
          Cx.Ph = CtxPh::Wedged;
          Cx.WedgeTime = End;
          return;
        }
        Cx.Ph = CtxPh::MemWait;
        sched(Tc, Ev::CtxResume, Me, C);
        return;
      }
    } else {
      sched(T, Ev::MeRun, Me); // entry trap: engine stays free
    }

    // Packet finished (halt or trap): record and hand to TX.
    Rec.Result = Cx.takeResult();
    Rec.CompleteTime = End;
    if (Rec.Wedged)
      ++Sup.stats().PacketsRecovered;
    ++St.CtxPackets[Me][C];
    wantPushTx(Me, C, End);
  }

  /// Counts one application SDRAM reference against the chan-brownout
  /// schedule; when it fires (and no window is already active) the SDRAM
  /// channel's issue interval degrades for BrownoutWindow cycles.
  void maybeBrownout(uint64_t T) {
    unsigned Factor = Sup.brownoutFactor();
    if (!Factor || BrownoutActive)
      return;
    BrownoutActive = true;
    SdramCh.IssueInterval = SdramBaseInterval * Factor;
    RecoveryStats &RS = Sup.stats();
    ++RS.BrownoutsInjected;
    RS.BrownoutCycles += Sup.config().BrownoutWindow;
    sched(T + Sup.config().BrownoutWindow, Ev::BrownoutEnd);
  }

  //===--- TX agent --------------------------------------------------------===//

  void txStartPop(uint64_t T) {
    TxIdle = false;
    uint64_t Seq = Tx.pop(T);
    if (!TxProducers.empty()) {
      auto [M, C] = TxProducers.front();
      TxProducers.pop_front();
      Mes[M].Ctx[C].Ph = CtxPh::RetryPush;
      sched(T, Ev::CtxResume, M, C);
    }
    sched(ScratchCh.submit(T), Ev::TxPopDone, 0, 0, Seq);
  }

  void onTxPopDone(uint64_t Seq, uint64_t T) {
    auto It = InFlight.find(Seq);
    assert(It != InFlight.end() && "TX popped an unknown packet");
    // TX has pulled the completion off the ring: the packet is done
    // executing and its descriptor is in TX's hands, so its SDRAM slot
    // recycles NOW — not at in-order retirement. Holding slots to
    // retirement would let one slow (watchdog-bound) head packet stall
    // every context behind it; freeing at TX pop keeps the execution
    // window bounded only by contexts and rings. The reorder buffer
    // below re-sequences descriptors for the in-order hand-off.
    if (!It->second.Tail)
      FreeSlots.insert(It->second.SlotIdx);
    --InFlightCount;
    Reorder.emplace(Seq, std::move(It->second));
    InFlight.erase(It);
    St.ReorderHighWater = std::max(
        St.ReorderHighWater, static_cast<unsigned>(Reorder.size()));

    drainReorder(T);
    wakeRxIfSlotFreed(T);

    if (!Tx.empty())
      txStartPop(T);
    else
      TxIdle = true;
  }

  /// Retires every in-order completion at the head of the reorder
  /// buffer. Shared by the TX pop path and the recovery paths that
  /// synthesize typed drops (backpressure, exhausted DMA) directly into
  /// the reorder buffer.
  void drainReorder(uint64_t T) {
    while (!Reorder.empty() && Reorder.begin()->first == NextRetire) {
      InFlightRec Rec = std::move(Reorder.begin()->second);
      Reorder.erase(Reorder.begin());
      ++St.PacketsRetired;
      RetireFold = traceFold(RetireFold, NextRetire);
      RetireFold = traceFold(RetireFold, T);
      ++NextRetire;

      RetiredPacket RP;
      RP.Pkt = std::move(Rec.Pkt);
      RP.RebasedArgs = std::move(Rec.RebasedArgs);
      RP.Result = std::move(Rec.Result);
      RP.Me = Rec.Me;
      RP.Ctx = Rec.Ctx;
      RP.Tail = Rec.Tail;
      RP.SlotBase = Rec.SlotBase;
      RP.DispatchTime = Rec.DispatchTime;
      RP.CompleteTime = Rec.CompleteTime;
      RP.RetireTime = T;
      RP.Drop = Rec.Drop;
      RP.Attempts = Rec.Attempts;
      (*Retire)(std::move(RP));
    }
  }

  //===--- Supervisor ------------------------------------------------------===//

  /// Watchdog scan + RX backpressure check. Scheduled only when a fault
  /// schedule is armed, so fault-free runs stay event-for-event
  /// identical to an unsupervised chip.
  void onSupTick(uint64_t T) {
    const SupervisorConfig &C = Sup.config();
    RecoveryStats &RS = Sup.stats();

    // Retire-progress watchdog: a context whose outstanding memory
    // reference never completed and that has made no progress for
    // LockupThreshold cycles is declared locked up. Recovery aborts
    // it; the packet either requeues (bounded retries, exponential
    // backoff) or retires dead as a typed Lockup drop — in order.
    for (unsigned M = 0; M != P.MP.MeCount; ++M) {
      for (unsigned Cn = 0; Cn != P.MP.ContextsPerMe; ++Cn) {
        HwCtx &Cx = Mes[M].Ctx[Cn];
        if (Cx.Ph != CtxPh::Wedged || T - Cx.WedgeTime < C.LockupThreshold)
          continue;
        ++RS.LockupsDetected;
        Cx.abort();
        ++RS.CtxResets;
        InFlightRec &Rec = InFlight.at(Cx.CurSeq);
        if (Rec.Attempts - 1 >= C.MaxRetries) {
          // Retries exhausted: declare the packet dead and push the
          // typed drop through the normal TX path so retirement stays
          // in arrival order.
          ++RS.LockupDrops;
          Rec.Drop = DropReason::Lockup;
          Rec.Result = sim::RunResult();
          Rec.Result.Ok = false;
          Rec.CompleteTime = T;
          ++St.CtxPackets[M][Cn];
          wantPushTx(M, Cn, T);
        } else {
          uint64_t Delay = Sup.backoff(Rec.Attempts);
          RS.MaxBackoffCycles = std::max(RS.MaxBackoffCycles, Delay);
          ++RS.PacketRequeues;
          Cx.Ph = CtxPh::RestartWait;
          sched(T + Delay, Ev::CtxRestart, M, Cn);
        }
      }
    }

    // RX backpressure: when every input ring has stayed full (or
    // NAKing) past the threshold, drop the pending packet instead of
    // waiting unboundedly — ingress loss is typed and bounded, and RX
    // moves on to the next arrival.
    if (RxWaiting == RxWait::RingFull && RxStuck &&
        T - RxStuckSince >= C.BackpressureThreshold) {
      auto It = InFlight.find(RxPendSeq);
      assert(It != InFlight.end() && "backpressure drop of unknown packet");
      InFlightRec Rec = std::move(It->second);
      InFlight.erase(It);
      --InFlightCount;
      if (!Rec.Tail)
        FreeSlots.insert(Rec.SlotIdx);
      Rec.PrivMem.reset();
      Rec.Drop = DropReason::Backpressure;
      Rec.Result = sim::RunResult();
      Rec.Result.Ok = false;
      Rec.CompleteTime = T;
      ++RS.BackpressureDrops;
      Reorder.emplace(Rec.Pkt.Seq, std::move(Rec));
      St.ReorderHighWater = std::max(
          St.ReorderHighWater, static_cast<unsigned>(Reorder.size()));
      drainReorder(T);
      RxStuck = false;
      RxWaiting = RxWait::None;
      RxHave = false;
      RxPhase = RxPh::Dispatch;
      schedRx(T);
    }

    // Keep ticking while anything is still moving through the chip.
    if (!RxDone || RxHave || InFlightCount != 0 || !Reorder.empty())
      sched(T + C.WatchdogPeriod, Ev::SupTick);
  }

  /// Backoff expired: restore the packet's pristine input state (slot
  /// scrub + re-DMA, fresh quarantine image for tail packets, spill
  /// window scrub) and requeue it on its context. Apps never write
  /// SRAM/scratch outside their spill window, so a restart is
  /// idempotent: the retry sees exactly the state a first run sees.
  void onCtxRestart(unsigned Me, unsigned C, uint64_t T) {
    HwCtx &Cx = Mes[Me].Ctx[C];
    assert(Cx.Ph == CtxPh::RestartWait && "CtxRestart in unexpected phase");
    InFlightRec &Rec = InFlight.at(Cx.CurSeq);
    ++Rec.Attempts;
    if (Rec.Tail)
      Rec.PrivMem = std::make_unique<sim::Memory>(BaseImage);
    else
      scrubSdram(Rec.SlotBase, uint64_t(Rec.SlotBase) + P.SlotStride);
    (void)rxDma(Rec, T, 0); // restart re-DMA never re-fires dma-drop
    uint64_t Td = RxDmaEnd;
    const alloc::AllocatedProgram *Pr = Progs[Me];
    uint32_t SpillLo =
        Pr->SpillBase + (Me * P.MP.ContextsPerMe + C) * SpillStep;
    Mem.Scratch.eraseRange(SpillLo, uint64_t(SpillLo) + Pr->NumSpillSlots);
    Cx.Ph = CtxPh::StartReady;
    ctxReady(Me, C, Td);
  }

  void onBrownoutEnd() {
    SdramCh.IssueInterval = SdramBaseInterval;
    BrownoutActive = false;
  }

  /// A ring-stall window ended: wake whoever was parked on the ring.
  void onRingUnstall(unsigned RingId, uint64_t T) {
    if (RingId >= P.MP.MeCount) {
      // TX ring: wake one parked producer (each successful push then
      // triggers pops, and each pop wakes the next producer).
      if (!TxProducers.empty() && !Tx.full() && !Tx.stalled(T)) {
        auto [M, Cn] = TxProducers.front();
        TxProducers.pop_front();
        Mes[M].Ctx[Cn].Ph = CtxPh::RetryPush;
        sched(T, Ev::CtxResume, M, Cn);
      }
      return;
    }
    wakeRxIfRingFreed(RingId, T);
  }

  //===--- Checkpoint ------------------------------------------------------===//

  // Serializes every mutable field of the simulation, in declaration
  // order. Construction-derived state (P, Progs, Trans, BaseImage,
  // Opts, SpillStep, SdramBaseInterval, spill rebases, ring/slot
  // geometry) is rebuilt deterministically by the constructor and NOT
  // saved; Ran/Src/Retire/Hook are per-run wiring.
  void saveState(BinWriter &W) const {
    saveChannel(W, SramCh);
    saveChannel(W, SdramCh);
    saveChannel(W, ScratchCh);
    for (const MeState &M : Mes) {
      W.u64(M.FreeAt);
      W.u64(M.Busy);
      W.u32(static_cast<uint32_t>(M.Ready.size()));
      for (unsigned C : M.Ready)
        W.u32(C);
      for (const HwCtx &Cx : M.Ctx) {
        if (Cx.Threaded)
          Cx.Seg.saveState(W);
        else
          Cx.Exec.saveState(W);
        W.u8(static_cast<uint8_t>(Cx.Ph));
        W.u64(Cx.CurSeq);
        W.u64(Cx.WedgeTime);
      }
    }
    for (const Ring &Rg : In)
      Rg.saveState(W);
    for (const std::deque<unsigned> &D : Consumers) {
      W.u32(static_cast<uint32_t>(D.size()));
      for (unsigned C : D)
        W.u32(C);
    }
    Tx.saveState(W);
    W.b(TxIdle);
    W.u32(static_cast<uint32_t>(TxProducers.size()));
    for (const auto &[M, C] : TxProducers) {
      W.u32(M);
      W.u32(C);
    }
    saveRecMap(W, InFlight);
    saveRecMap(W, Reorder);
    W.u64(NextRetire);
    W.u64(NextDispatch);
    W.u64(FreeSlots.size());
    for (uint32_t S : FreeSlots)
      W.u32(S);
    W.u64(InFlightCount);
    W.u8(static_cast<uint8_t>(RxPhase));
    W.u8(static_cast<uint8_t>(RxWaiting));
    W.b(RxDone);
    W.b(RxHave);
    W.b(RxPktTail);
    savePacket(W, RxPkt);
    W.u64(RxPendSeq);
    W.u32(RxTarget);
    W.u64(RxGen);
    W.u64(RxDmaEnd);
    Sup.saveState(W);
    W.b(BrownoutActive);
    W.b(RxStuck);
    W.u64(RxStuckSince);
    Mem.saveState(W);
    const std::vector<Event> &H = Q.raw();
    W.u64(H.size());
    for (const Event &E : H) {
      W.u64(E.Time);
      W.u64(E.Order);
      W.u8(static_cast<uint8_t>(E.K));
      W.u32(E.Me);
      W.u32(E.Ctx);
      W.u64(E.A);
    }
    W.u64(OrderCtr);
    W.u64(LastTime);
    // ChipRunStats accumulators (the derived fields — FinalCycles,
    // channel/ring summaries, TraceHash, Recovery — are produced at
    // finalization from state serialized above).
    W.u64(St.PacketsDispatched);
    W.u64(St.PacketsRetired);
    W.u64(St.TailPackets);
    for (uint64_t V : St.MeBusyCycles)
      W.u64(V);
    for (const std::vector<uint64_t> &Row : St.CtxPackets)
      for (uint64_t V : Row)
        W.u64(V);
    W.u32(St.ReorderHighWater);
    W.u64(St.RxDmaTransactions);
    W.u64(RetireFold);
  }

  void restoreState(BinReader &R) {
    restoreChannel(R, SramCh);
    restoreChannel(R, SdramCh);
    restoreChannel(R, ScratchCh);
    for (MeState &M : Mes) {
      M.FreeAt = R.u64();
      M.Busy = R.u64();
      M.Ready.clear();
      uint32_t NR = R.u32();
      for (uint32_t I = 0; I != NR && !R.failed(); ++I)
        M.Ready.push_back(R.u32());
      for (HwCtx &Cx : M.Ctx) {
        if (Cx.Threaded)
          Cx.Seg.restoreState(R);
        else
          Cx.Exec.restoreState(R);
        Cx.Ph = static_cast<CtxPh>(R.u8());
        Cx.CurSeq = R.u64();
        Cx.WedgeTime = R.u64();
      }
    }
    for (Ring &Rg : In)
      Rg.restoreState(R);
    for (std::deque<unsigned> &D : Consumers) {
      D.clear();
      uint32_t N = R.u32();
      for (uint32_t I = 0; I != N && !R.failed(); ++I)
        D.push_back(R.u32());
    }
    Tx.restoreState(R);
    TxIdle = R.b();
    TxProducers.clear();
    uint32_t NTx = R.u32();
    for (uint32_t I = 0; I != NTx && !R.failed(); ++I) {
      unsigned M = R.u32();
      unsigned C = R.u32();
      TxProducers.emplace_back(M, C);
    }
    restoreRecMap(R, InFlight);
    restoreRecMap(R, Reorder);
    NextRetire = R.u64();
    NextDispatch = R.u64();
    FreeSlots.clear();
    uint64_t NS = R.u64();
    for (uint64_t I = 0; I != NS && !R.failed(); ++I)
      FreeSlots.insert(R.u32());
    InFlightCount = R.u64();
    RxPhase = static_cast<RxPh>(R.u8());
    RxWaiting = static_cast<RxWait>(R.u8());
    RxDone = R.b();
    RxHave = R.b();
    RxPktTail = R.b();
    restorePacket(R, RxPkt);
    RxPendSeq = R.u64();
    RxTarget = R.u32();
    RxGen = R.u64();
    RxDmaEnd = R.u64();
    Sup.restoreState(R);
    BrownoutActive = R.b();
    RxStuck = R.b();
    RxStuckSince = R.u64();
    Mem.restoreState(R);
    Q.raw().clear();
    uint64_t NQ = R.u64();
    for (uint64_t I = 0; I != NQ && !R.failed(); ++I) {
      Event E;
      E.Time = R.u64();
      E.Order = R.u64();
      E.K = static_cast<Ev>(R.u8());
      E.Me = R.u32();
      E.Ctx = R.u32();
      E.A = R.u64();
      Q.raw().push_back(E);
    }
    OrderCtr = R.u64();
    LastTime = R.u64();
    St.PacketsDispatched = R.u64();
    St.PacketsRetired = R.u64();
    St.TailPackets = R.u64();
    for (uint64_t &V : St.MeBusyCycles)
      V = R.u64();
    for (std::vector<uint64_t> &Row : St.CtxPackets)
      for (uint64_t &V : Row)
        V = R.u64();
    St.ReorderHighWater = R.u32();
    St.RxDmaTransactions = R.u64();
    RetireFold = R.u64();
    LastHookRetired = St.PacketsRetired;
    Restored = true;
  }

  //===--- Event loop ------------------------------------------------------===//

  ChipRunStats runAll(const Source &S, const RetireFn &R) {
    assert(!Ran && "Chip::run is single-shot");
    Ran = true;
    Src = &S;
    Retire = &R;
    if (!Restored) {
      schedRx(0);
      if (Sup.enabled())
        sched(Sup.config().WatchdogPeriod, Ev::SupTick);
    }

    while (!Q.empty()) {
      Event E = Q.top();
      Q.pop();
      LastTime = std::max(LastTime, E.Time);
      switch (E.K) {
      case Ev::MeRun:
        onMeRun(E.Me, E.Time);
        break;
      case Ev::CtxResume:
        onCtxResume(E.Me, E.Ctx, E.Time);
        break;
      case Ev::RxStep:
        rxStep(E.Time, E.A);
        break;
      case Ev::TxPopDone:
        onTxPopDone(E.A, E.Time);
        break;
      case Ev::SupTick:
        onSupTick(E.Time);
        break;
      case Ev::CtxRestart:
        onCtxRestart(E.Me, E.Ctx, E.Time);
        break;
      case Ev::BrownoutEnd:
        onBrownoutEnd();
        break;
      case Ev::RingUnstall:
        onRingUnstall(E.Me, E.Time);
        break;
      }
      if (Hook && St.PacketsRetired != LastHookRetired) {
        LastHookRetired = St.PacketsRetired;
        if (Hook(St.PacketsRetired, LastTime)) {
          Stopped = true;
          return St; // partial: the caller treats this run as crashed
        }
      }
    }

    St.FinalCycles = LastTime;
    St.Deadlock =
        InFlightCount != 0 || !Reorder.empty() || RxHave || !RxDone;
    St.Sram = SramCh.St;
    St.Sdram = SdramCh.St;
    St.Scratch = ScratchCh.St;
    uint64_t H = 0xcbf29ce484222325ull;
    for (const Ring &Rg : In) {
      St.InputRings.push_back({Rg.capacity(), Rg.highWater(), Rg.pushes(),
                               Rg.pops(), Rg.traceHash()});
      H = traceFold(H, Rg.traceHash());
    }
    St.TxRing = {Tx.capacity(), Tx.highWater(), Tx.pushes(), Tx.pops(),
                 Tx.traceHash()};
    H = traceFold(H, Tx.traceHash());
    H = traceFold(H, RetireFold);
    St.TraceHash = H;
    St.Exec = P.Exec;
    St.Recovery = Sup.stats();
    for (const auto &KV : Trans) {
      St.Superblocks += KV.second.Superblocks;
      St.SuperblockOps += KV.second.SuperblockOps;
    }
    return St;
  }
};

//===----------------------------------------------------------------------===//
// Public surface
//===----------------------------------------------------------------------===//

Chip::Chip(const ChipParams &P,
           std::vector<const alloc::AllocatedProgram *> ProgramPerMe,
           sim::Memory Base)
    : I(std::make_unique<Impl>(P, std::move(ProgramPerMe),
                               std::move(Base))) {}

Chip::~Chip() = default;

ChipRunStats Chip::run(const Source &Src, const RetireFn &Retire) {
  return I->runAll(Src, Retire);
}

sim::Memory &Chip::memory() { return I->Mem; }

void Chip::setRetireHook(RetireHook H) { I->Hook = std::move(H); }

bool Chip::stopped() const { return I->Stopped; }

void Chip::saveState(BinWriter &W) const { I->saveState(W); }

void Chip::restoreState(BinReader &R) { I->restoreState(R); }
