//===- Verifier.cpp -------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"

#include "support/StringUtils.h"

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

class Verifier {
public:
  explicit Verifier(const AllocatedProgram &P) : P(P) {}

  std::vector<std::string> run() {
    for (unsigned B = 0; B != P.Blocks.size(); ++B)
      for (unsigned I = 0; I != P.Blocks[B].Instrs.size(); ++I)
        check(B, I, P.Blocks[B].Instrs[I]);
    return std::move(Violations);
  }

private:
  const AllocatedProgram &P;
  std::vector<std::string> Violations;

  void fail(unsigned B, unsigned I, const std::string &Msg) {
    Violations.push_back(formatf("b%u[%u]: %s", B, I, Msg.c_str()));
  }

  void checkCapacity(unsigned B, unsigned I, PhysLoc L) {
    unsigned Cap;
    switch (L.B) {
    case Bank::A:
    case Bank::B:
      Cap = 16; // the reserved A register is a legal physical register
      break;
    case Bank::L:
    case Bank::S:
    case Bank::LD:
    case Bank::SD:
      Cap = 8;
      break;
    default:
      return; // M slots unbounded
    }
    if (L.Reg >= Cap)
      fail(B, I, formatf("register %s out of range", L.str().c_str()));
  }

  void requireAluResult(unsigned B, unsigned I, PhysLoc L) {
    checkCapacity(B, I, L);
    if (!isAluOutputBank(L.B))
      fail(B, I,
           formatf("ALU result written to non-writable bank %s",
                   L.str().c_str()));
  }

  void requireReadable(unsigned B, unsigned I, const AOperand &O) {
    if (O.IsConst)
      return;
    checkCapacity(B, I, O.Loc);
    if (!isAluInputBank(O.Loc.B))
      fail(B, I,
           formatf("operand read from non-readable bank %s",
                   O.Loc.str().c_str()));
  }

  void requireGpAddress(unsigned B, unsigned I, const AOperand &O,
                        bool AllowConst) {
    if (O.IsConst) {
      if (!AllowConst)
        fail(B, I, "memory address must come from a register");
      return;
    }
    checkCapacity(B, I, O.Loc);
    if (O.Loc.B != Bank::A && O.Loc.B != Bank::B)
      fail(B, I, formatf("memory address in bank %s (need A or B)",
                         bankName(O.Loc.B)));
  }

  void requirePairing(unsigned B, unsigned I, const AOperand &X,
                      const AOperand &Y) {
    if (X.IsConst || Y.IsConst)
      return;
    Bank BX = X.Loc.B, BY = Y.Loc.B;
    if (BX == BY && (BX == Bank::A || BX == Bank::B || BX == Bank::L ||
                     BX == Bank::LD))
      fail(B, I, formatf("both operands from bank %s", bankName(BX)));
    bool XferX = BX == Bank::L || BX == Bank::LD;
    bool XferY = BY == Bank::L || BY == Bank::LD;
    if (XferX && XferY)
      fail(B, I, "both operands from the read-transfer banks");
  }

  void requireAggregate(unsigned B, unsigned I,
                        const std::vector<PhysLoc> &Locs, Bank Want) {
    for (unsigned K = 0; K != Locs.size(); ++K) {
      checkCapacity(B, I, Locs[K]);
      if (Locs[K].B != Want)
        fail(B, I, formatf("aggregate element %u in bank %s (need %s)", K,
                           bankName(Locs[K].B), bankName(Want)));
      if (K && Locs[K].Reg != Locs[K - 1].Reg + 1)
        fail(B, I,
             formatf("aggregate not consecutive: %s after %s",
                     Locs[K].str().c_str(), Locs[K - 1].str().c_str()));
    }
  }

  void check(unsigned B, unsigned I, const AllocInstr &MI) {
    switch (MI.Op) {
    case MOp::Alu: {
      requireAluResult(B, I, MI.Dsts[0]);
      for (const AOperand &S : MI.Srcs)
        if (!S.IsConst)
          requireReadable(B, I, S);
      std::vector<const AOperand *> Regs;
      for (const AOperand &S : MI.Srcs)
        if (!S.IsConst)
          Regs.push_back(&S);
      if (Regs.size() == 2 && !(Regs[0]->Loc == Regs[1]->Loc))
        requirePairing(B, I, *Regs[0], *Regs[1]);
      break;
    }
    case MOp::Imm:
      requireAluResult(B, I, MI.Dsts[0]);
      break;
    case MOp::Move:
      requireAluResult(B, I, MI.Dsts[0]);
      requireReadable(B, I, MI.Srcs[0]);
      break;
    case MOp::MemRead: {
      Bank Want = MI.Space == MemSpace::Sdram ? Bank::LD : Bank::L;
      requireAggregate(B, I, MI.Dsts, Want);
      requireGpAddress(B, I, MI.Srcs[0], /*AllowConst=*/MI.Space ==
                                             MemSpace::Scratch);
      break;
    }
    case MOp::MemWrite: {
      Bank Want = MI.Space == MemSpace::Sdram ? Bank::SD : Bank::S;
      requireGpAddress(B, I, MI.Srcs[0], /*AllowConst=*/MI.Space ==
                                             MemSpace::Scratch);
      std::vector<PhysLoc> Locs;
      for (unsigned K = 1; K != MI.Srcs.size(); ++K) {
        if (MI.Srcs[K].IsConst) {
          fail(B, I, "store value must come from a register");
          continue;
        }
        Locs.push_back(MI.Srcs[K].Loc);
      }
      requireAggregate(B, I, Locs, Want);
      break;
    }
    case MOp::Hash: {
      if (MI.Dsts[0].B != Bank::L)
        fail(B, I, "hash result must land in L");
      if (MI.Srcs[0].IsConst || MI.Srcs[0].Loc.B != Bank::S)
        fail(B, I, "hash operand must come from S");
      else if (MI.Dsts[0].Reg != MI.Srcs[0].Loc.Reg)
        fail(B, I, formatf("hash SameReg violated: %s vs %s",
                           MI.Dsts[0].str().c_str(),
                           MI.Srcs[0].Loc.str().c_str()));
      break;
    }
    case MOp::BitTestSet: {
      requireGpAddress(B, I, MI.Srcs[0], /*AllowConst=*/false);
      if (MI.Dsts[0].B != Bank::L)
        fail(B, I, "bit-test-set result must land in L");
      if (MI.Srcs[1].IsConst || MI.Srcs[1].Loc.B != Bank::S)
        fail(B, I, "bit-test-set operand must come from S");
      else if (MI.Dsts[0].Reg != MI.Srcs[1].Loc.Reg)
        fail(B, I, "bit-test-set SameReg violated");
      break;
    }
    case MOp::Clone:
      fail(B, I, "clone pseudo survived allocation");
      break;
    case MOp::Branch: {
      std::vector<const AOperand *> Regs;
      for (const AOperand &S : MI.Srcs)
        if (!S.IsConst)
          Regs.push_back(&S);
      for (const AOperand *S : Regs)
        requireReadable(B, I, *S);
      if (Regs.size() == 2 && !(Regs[0]->Loc == Regs[1]->Loc))
        requirePairing(B, I, *Regs[0], *Regs[1]);
      if (MI.Target >= P.Blocks.size() || MI.TargetElse >= P.Blocks.size())
        fail(B, I, "branch target out of range");
      break;
    }
    case MOp::Jump:
      if (MI.Target >= P.Blocks.size())
        fail(B, I, "jump target out of range");
      break;
    case MOp::Halt:
      for (const AOperand &S : MI.Srcs)
        requireReadable(B, I, S);
      break;
    }
  }
};

} // namespace

std::vector<std::string> alloc::verifyAllocated(const AllocatedProgram &P) {
  return Verifier(P).run();
}
