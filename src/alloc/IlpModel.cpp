//===- IlpModel.cpp - The paper's ILP allocation model ---------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/IlpModel.h"

#include "support/Debug.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cassert>
#include <set>
#include <sstream>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;
using ilp::LinExpr;
using ilp::Rel;
using ilp::VarId;

namespace {
uint8_t bankIdx(Bank B) { return static_cast<uint8_t>(B); }
} // namespace

AllocModel::AllocModel(const MachineProgram &M, const Liveness &LV,
                       const PointMap &Points, const FrequencyInfo &Freq,
                       const BankAnalysis &Banks, const ModelOptions &Opts)
    : M(M), LV(LV), Points(Points), Freq(Freq), Banks(Banks), Opts(Opts) {}

//===----------------------------------------------------------------------===//
// Slots and segments
//===----------------------------------------------------------------------===//

uint32_t AllocModel::slotIndex(PointId P, Temp V, bool AfterSide) const {
  auto It = SlotBase.find({P, V});
  assert(It != SlotBase.end() && "no slot: temp does not exist at point");
  return It->second + (AfterSide ? 1 : 0);
}

uint32_t AllocModel::findRoot(uint32_t Slot) const {
  while (Dsu[Slot] != Slot)
    Slot = Dsu[Slot] = Dsu[Dsu[Slot]];
  return Slot;
}

uint32_t AllocModel::classOf(PointId P, Temp V, bool AfterSide) const {
  return findRoot(slotIndex(P, V, AfterSide));
}

bool AllocModel::isMovePoint(PointId P, Temp V) const {
  auto It = MoveAllowed.find({P, V});
  return It != MoveAllowed.end() && It->second;
}

void AllocModel::computeMovePoints() {
  for (PointId P = 0; P != Points.numPoints(); ++P) {
    BlockId B = Points.blockOf(P);
    unsigned Idx = P - Points.entryPoint(B);
    const Block &Blk = M.Blocks[B];
    // No moves at block exit points: they would sit after the terminator.
    // Cross-block bank changes happen at the successor's entry point,
    // whose before-side is shared with every predecessor's exit.
    bool IsExit = Idx == Blk.Instrs.size();
    bool IsEntry = Idx == 0;
    const MachineInstr *Prev = Idx > 0 ? &Blk.Instrs[Idx - 1] : nullptr;
    const MachineInstr *Next =
        Idx < Blk.Instrs.size() ? &Blk.Instrs[Idx] : nullptr;

    for (Temp V : Points.existsAt(P)) {
      if (IsExit) {
        MoveAllowed[{P, V}] = false;
        continue;
      }
      bool Allowed = true;
      if (Opts.RestrictMovePoints) {
        auto Touches = [V](const MachineInstr *I) {
          if (!I)
            return false;
          for (Temp D : I->Dsts)
            if (D == V)
              return true;
          for (const MOperand &S : I->Srcs)
            if (!S.IsConst && S.T == V)
              return true;
          return false;
        };
        // Moves happen where the temp is defined or used, or at block
        // entries. An eviction that some later instruction forces can
        // always be hoisted to one of these points at equal weight
        // within the block (and block entries cover cross-block
        // placement), so this restriction barely affects optimality
        // while shrinking the model dramatically (the paper's Section 8
        // theme).
        Allowed = IsEntry || Touches(Prev) || Touches(Next);
      }
      MoveAllowed[{P, V}] = Allowed;
      if (Allowed)
        ++Stats.NumMovePoints;
    }
  }
}

void AllocModel::buildSegments() {
  // Enumerate slots.
  uint32_t NumSlots = 0;
  for (PointId P = 0; P != Points.numPoints(); ++P)
    for (Temp V : Points.existsAt(P)) {
      SlotBase[{P, V}] = NumSlots;
      NumSlots += 2;
    }
  Dsu.resize(NumSlots);
  TempOfSlot.resize(NumSlots);
  for (uint32_t I = 0; I != NumSlots; ++I)
    Dsu[I] = I;
  for (auto &[Key, Base] : SlotBase) {
    TempOfSlot[Base] = Key.second;
    TempOfSlot[Base + 1] = Key.second;
  }

  auto Union = [&](uint32_t A, uint32_t B) {
    uint32_t RA = findRoot(A), RB = findRoot(B);
    if (RA != RB)
      Dsu[RB] = RA;
  };

  // Before ~ after at non-move points.
  for (auto &[Key, Base] : SlotBase)
    if (!isMovePoint(Key.first, Key.second))
      Union(Base, Base + 1);
  // Carried-unchanged links (instructions not touching v, control edges).
  for (const PointMap::CopyEntry &C : Points.copies())
    Union(slotIndex(C.P1, C.V, /*AfterSide=*/true),
          slotIndex(C.P2, C.V, /*AfterSide=*/false));

  std::set<uint32_t> Roots;
  for (uint32_t I = 0; I != NumSlots; ++I)
    Roots.insert(findRoot(I));
  Stats.NumSegments = Roots.size();
}

//===----------------------------------------------------------------------===//
// Variables
//===----------------------------------------------------------------------===//

std::optional<VarId> AllocModel::locVar(uint32_t Class, Bank B) const {
  auto It = Loc.find({Class, bankIdx(B)});
  if (It == Loc.end())
    return std::nullopt;
  return It->second;
}

LinExpr AllocModel::locExpr(uint32_t Class, Bank B) const {
  if (auto V = locVar(Class, B))
    return LinExpr(*V);
  // No variable: the class has a single allowed bank.
  Temp T = TempOfSlot[Class];
  return LinExpr(Banks.allowedCount(T) == 1 && Banks.allowed(T, B) ? 1.0
                                                                   : 0.0);
}

double AllocModel::locValue(const std::vector<double> &X, uint32_t Class,
                            Bank B) const {
  if (auto V = locVar(Class, B))
    return X[V->Index];
  Temp T = TempOfSlot[Class];
  return Banks.allowedCount(T) == 1 && Banks.allowed(T, B) ? 1.0 : 0.0;
}

void AllocModel::buildLocVars() {
  std::set<uint32_t> Done;
  for (auto &[Key, Base] : SlotBase) {
    for (unsigned Side = 0; Side != 2; ++Side) {
      uint32_t C = findRoot(Base + Side);
      if (!Done.insert(C).second)
        continue;
      Temp T = TempOfSlot[C];
      std::vector<Bank> Allowed = Banks.allowedBanks(T);
      if (Allowed.size() <= 1)
        continue; // location is a constant
      LinExpr Sum;
      for (Bank B : Allowed) {
        VarId V = Ilp.addBinary(formatf("loc_c%u_%s", C, bankName(B)));
        Loc[{C, bankIdx(B)}] = V;
        Sum += LinExpr(V);
      }
      // In-one-place (paper Section 6).
      Ilp.addConstraint(std::move(Sum), Rel::EQ, 1.0,
                        formatf("oneplace_c%u", C));
    }
  }
}

void AllocModel::buildMoves() {
  for (auto &[Key, Allowed] : MoveAllowed) {
    if (!Allowed)
      continue;
    auto [P, V] = Key;
    if (Banks.allowedCount(V) <= 1)
      continue;
    uint32_t C1 = classOf(P, V, /*AfterSide=*/false);
    uint32_t C2 = classOf(P, V, /*AfterSide=*/true);
    if (C1 == C2)
      continue; // a cycle of copies re-joined the sides: no move possible
    MovePointList.push_back(Key);
    auto &Vars = MoveVars[Key];
    std::vector<Bank> Allowed2 = Banks.allowedBanks(V);
    for (Bank B1 : Allowed2)
      for (Bank B2 : Allowed2) {
        auto Cost =
            interBankMoveCost(B1, B2, Opts.Costs, Opts.AllowSpills);
        if (!Cost)
          continue;
        VarId MV = Ilp.addBinary(formatf("mv_p%u_t%u_%s_%s", P, V,
                                         bankName(B1), bankName(B2)));
        Vars[{bankIdx(B1), bankIdx(B2)}] = MV;
      }
    // Link: Before = sum of moves out of each bank; After = sum in.
    for (Bank B1 : Allowed2) {
      LinExpr Sum;
      bool Any = false;
      for (Bank B2 : Allowed2)
        if (auto It = Vars.find({bankIdx(B1), bankIdx(B2)});
            It != Vars.end()) {
          Sum += LinExpr(It->second);
          Any = true;
        }
      LinExpr Before = locExpr(C1, B1);
      if (Any)
        Ilp.addConstraint(Before - Sum, Rel::EQ, 0.0,
                          formatf("mvout_p%u_t%u_%s", P, V, bankName(B1)));
      else
        Ilp.addConstraint(std::move(Before), Rel::EQ, 0.0);
    }
    for (Bank B2 : Allowed2) {
      LinExpr Sum;
      bool Any = false;
      for (Bank B1 : Allowed2)
        if (auto It = Vars.find({bankIdx(B1), bankIdx(B2)});
            It != Vars.end()) {
          Sum += LinExpr(It->second);
          Any = true;
        }
      LinExpr After = locExpr(C2, B2);
      if (Any)
        Ilp.addConstraint(After - Sum, Rel::EQ, 0.0,
                          formatf("mvin_p%u_t%u_%s", P, V, bankName(B2)));
      else
        Ilp.addConstraint(std::move(After), Rel::EQ, 0.0);
    }
  }
}

//===----------------------------------------------------------------------===//
// Instruction operand and result constraints
//===----------------------------------------------------------------------===//

bool AllocModel::buildInstrConstraints(DiagnosticEngine &Diags) {
  bool Ok = true;

  /// Forbids every allowed bank of the slot's temp outside \p Subset.
  auto Restrict = [&](PointId P, Temp V, bool AfterSide,
                      std::initializer_list<Bank> Subset,
                      const char *What) {
    uint32_t C = classOf(P, V, AfterSide);
    bool AnyPossible = false;
    for (Bank B : Banks.allowedBanks(V)) {
      bool InSubset = std::find(Subset.begin(), Subset.end(), B) !=
                      Subset.end();
      if (InSubset) {
        AnyPossible = true;
        continue;
      }
      if (auto Var = locVar(C, B))
        Ilp.fix(*Var, 0.0);
      else {
        // Single-bank temp pinned to a non-subset bank: impossible.
        Diags.error(SourceLoc::invalid(),
                    formatf("allocator: %s of %s cannot be satisfied "
                            "(temp pinned to %s)",
                            What, M.tempName(V).c_str(), bankName(B)));
        Ok = false;
      }
    }
    if (!AnyPossible) {
      Diags.error(SourceLoc::invalid(),
                  formatf("allocator: %s of %s has no feasible bank", What,
                          M.tempName(V).c_str()));
      Ok = false;
    }
  };

  /// The paper's Arith pairing rules between two register operands.
  auto Pairing = [&](PointId P1, Temp X, Temp Y) {
    uint32_t CX = classOf(P1, X, /*AfterSide=*/true);
    uint32_t CY = classOf(P1, Y, /*AfterSide=*/true);
    // Not both from the same bank.
    for (Bank B : {Bank::A, Bank::B, Bank::L, Bank::LD}) {
      if (!Banks.allowed(X, B) || !Banks.allowed(Y, B))
        continue;
      Ilp.addConstraint(locExpr(CX, B) + locExpr(CY, B), Rel::LE, 1.0,
                        formatf("pair_p%u_%s", P1, bankName(B)));
    }
    // At most one operand from the read-transfer banks L+LD.
    for (Bank BX : {Bank::L, Bank::LD})
      for (Bank BY : {Bank::L, Bank::LD}) {
        if (BX == BY)
          continue; // covered by the same-bank rule
        if (!Banks.allowed(X, BX) || !Banks.allowed(Y, BY))
          continue;
        Ilp.addConstraint(locExpr(CX, BX) + locExpr(CY, BY), Rel::LE, 1.0,
                          formatf("xfer_p%u", P1));
      }
  };

  // Entry parameters arrive in bank A (harness ABI).
  if (M.Entry != NoBlock) {
    PointId P0 = Points.entryPoint(M.Entry);
    for (Temp Param : M.EntryParams)
      if (Points.exists(P0, Param))
        Restrict(P0, Param, /*AfterSide=*/false, {Bank::A},
                 "entry parameter");
  }

  for (const Block &Blk : M.Blocks) {
    for (unsigned I = 0; I != Blk.Instrs.size(); ++I) {
      const MachineInstr &MI = Blk.Instrs[I];
      PointId P1 = Points.pointAt(Blk.Id, I);
      PointId P2 = Points.pointAt(Blk.Id, I + 1);
      switch (MI.Op) {
      case MOp::Alu: {
        Restrict(P2, MI.Dsts[0], false,
                 {Bank::A, Bank::B, Bank::S, Bank::SD}, "ALU result");
        std::vector<Temp> RegSrcs;
        for (const MOperand &S : MI.Srcs)
          if (!S.IsConst)
            RegSrcs.push_back(S.T);
        for (Temp S : RegSrcs)
          Restrict(P1, S, true, {Bank::A, Bank::B, Bank::L, Bank::LD},
                   "ALU operand");
        if (RegSrcs.size() == 2 && RegSrcs[0] != RegSrcs[1])
          Pairing(P1, RegSrcs[0], RegSrcs[1]);
        break;
      }
      case MOp::Imm:
        Restrict(P2, MI.Dsts[0], false,
                 {Bank::A, Bank::B, Bank::S, Bank::SD}, "immediate");
        break;
      case MOp::Move:
        Restrict(P2, MI.Dsts[0], false,
                 {Bank::A, Bank::B, Bank::S, Bank::SD}, "move result");
        if (!MI.Srcs[0].IsConst)
          Restrict(P1, MI.Srcs[0].T, true,
                   {Bank::A, Bank::B, Bank::L, Bank::LD}, "move source");
        break;
      case MOp::MemRead: {
        Bank DB = MI.Space == MemSpace::Sdram ? Bank::LD : Bank::L;
        for (Temp D : MI.Dsts) {
          Restrict(P2, D, false, {DB}, "memory read result");
          ++(MI.Space == MemSpace::Sdram ? Stats.Aggregates.DefLD
                                         : Stats.Aggregates.DefL);
        }
        if (!MI.Srcs[0].IsConst)
          Restrict(P1, MI.Srcs[0].T, true, {Bank::A, Bank::B},
                   "memory address");
        break;
      }
      case MOp::MemWrite: {
        Bank SB = MI.Space == MemSpace::Sdram ? Bank::SD : Bank::S;
        if (!MI.Srcs[0].IsConst)
          Restrict(P1, MI.Srcs[0].T, true, {Bank::A, Bank::B},
                   "memory address");
        for (unsigned K = 1; K != MI.Srcs.size(); ++K) {
          Restrict(P1, MI.Srcs[K].T, true, {SB}, "store operand");
          ++(MI.Space == MemSpace::Sdram ? Stats.Aggregates.UseSD
                                         : Stats.Aggregates.UseS);
        }
        break;
      }
      case MOp::Hash:
        Restrict(P2, MI.Dsts[0], false, {Bank::L}, "hash result");
        Restrict(P1, MI.Srcs[0].T, true, {Bank::S}, "hash operand");
        ++Stats.Aggregates.DefL;
        ++Stats.Aggregates.UseS;
        break;
      case MOp::BitTestSet:
        Restrict(P2, MI.Dsts[0], false, {Bank::L}, "bit-test-set result");
        if (!MI.Srcs[0].IsConst)
          Restrict(P1, MI.Srcs[0].T, true, {Bank::A, Bank::B},
                   "memory address");
        Restrict(P1, MI.Srcs[1].T, true, {Bank::S}, "bit-test-set operand");
        ++Stats.Aggregates.DefL;
        ++Stats.Aggregates.UseS;
        break;
      case MOp::Clone: {
        // Clones start exactly where the original is (paper Section 10).
        Temp S = MI.Srcs[0].T;
        uint32_t CS = classOf(P1, S, /*AfterSide=*/true);
        for (Temp D : MI.Dsts) {
          uint32_t CD = classOf(P2, D, /*AfterSide=*/false);
          std::set<Bank> Union;
          for (Bank B : Banks.allowedBanks(S))
            Union.insert(B);
          for (Bank B : Banks.allowedBanks(D))
            Union.insert(B);
          for (Bank B : Union)
            Ilp.addConstraint(locExpr(CD, B) - locExpr(CS, B), Rel::EQ,
                              0.0, formatf("clone_p%u_t%u", P2, D));
        }
        break;
      }
      case MOp::Branch: {
        std::vector<Temp> RegSrcs;
        for (const MOperand &S : MI.Srcs)
          if (!S.IsConst)
            RegSrcs.push_back(S.T);
        for (Temp S : RegSrcs)
          Restrict(P1, S, true, {Bank::A, Bank::B, Bank::L, Bank::LD},
                   "branch operand");
        if (RegSrcs.size() == 2 && RegSrcs[0] != RegSrcs[1])
          Pairing(P1, RegSrcs[0], RegSrcs[1]);
        break;
      }
      case MOp::Jump:
        break;
      case MOp::Halt:
        for (const MOperand &S : MI.Srcs)
          if (!S.IsConst)
            Restrict(P1, S.T, true, {Bank::A, Bank::B, Bank::L, Bank::LD},
                     "program result");
        break;
      }
    }
  }
  return Ok;
}

//===----------------------------------------------------------------------===//
// K constraints for the general-purpose banks (paper Section 6), with the
// clone-representative counting of Section 10
//===----------------------------------------------------------------------===//

void AllocModel::buildKConstraints() {
  // Lazily created "some member of this clone group (these classes) is in
  // bank B" indicator variables.
  std::map<std::pair<std::string, uint8_t>, VarId> GroupVar;
  auto GroupExpr = [&](const std::vector<uint32_t> &Classes,
                       Bank B) -> LinExpr {
    if (Classes.size() == 1)
      return locExpr(Classes[0], B);
    std::string Key;
    for (uint32_t C : Classes)
      Key += std::to_string(C) + ",";
    auto It = GroupVar.find({Key, bankIdx(B)});
    VarId GV;
    if (It != GroupVar.end()) {
      GV = It->second;
    } else {
      GV = Ilp.addBinary(formatf("cloneloc_%s_%s", Key.c_str(),
                                 bankName(B)));
      GroupVar[{Key, bankIdx(B)}] = GV;
      LinExpr Sum;
      for (uint32_t C : Classes) {
        // GV >= Loc_c,B  (counts the whole set once when any member is
        // present; members co-resident in B share one register).
        Ilp.addConstraint(LinExpr(GV) - locExpr(C, B), Rel::GE, 0.0);
        Sum += locExpr(C, B);
      }
      Ilp.addConstraint(LinExpr(GV) - Sum, Rel::LE, 0.0);
    }
    return LinExpr(GV);
  };

  std::set<std::string> SeenRows;
  for (PointId P = 0; P != Points.numPoints(); ++P) {
    const std::set<Temp> &Live = Points.existsAt(P);
    for (unsigned Side = 0; Side != 2; ++Side) {
      for (Bank B : {Bank::A, Bank::B, Bank::L, Bank::S, Bank::LD,
                     Bank::SD}) {
        // Group live temps by clone set (co-located clones share one
        // register in the GP banks). In transfer banks clones may sit at
        // distinct aggregate positions, so each temp counts there.
        std::map<Temp, std::vector<uint32_t>> Groups;
        for (Temp V : Live) {
          if (!Banks.allowed(V, B))
            continue;
          Temp Key = isTransferBank(B) ? V : Banks.cloneRep(V);
          Groups[Key].push_back(classOf(P, V, Side != 0));
        }
        if (Groups.size() <= bankCapacity(B))
          continue;
        // Deduplicate identical rows across adjacent points.
        std::string Sig = std::string(bankName(B)) + ":";
        for (auto &[Rep, Classes] : Groups) {
          auto Sorted = Classes;
          std::sort(Sorted.begin(), Sorted.end());
          Sorted.erase(std::unique(Sorted.begin(), Sorted.end()),
                       Sorted.end());
          for (uint32_t C : Sorted)
            Sig += std::to_string(C) + ",";
          Sig += ";";
        }
        if (!SeenRows.insert(Sig).second)
          continue;
        LinExpr Sum;
        for (auto &[Rep, Classes] : Groups) {
          auto Sorted = Classes;
          std::sort(Sorted.begin(), Sorted.end());
          Sorted.erase(std::unique(Sorted.begin(), Sorted.end()),
                       Sorted.end());
          Sum += GroupExpr(Sorted, B);
        }
        Ilp.addConstraint(std::move(Sum), Rel::LE,
                          static_cast<double>(bankCapacity(B)),
                          formatf("K_p%u_%s", P, bankName(B)));
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Transfer-bank colors: interference, aggregates, SameReg, clone ties,
// and the spill spare-register bookkeeping (paper Sections 9-10)
//===----------------------------------------------------------------------===//

void AllocModel::buildColors() {
  // ILP colors exist only for "color-critical" temps: members of
  // aggregates of two or more registers, SameReg participants, and their
  // clone sets — the cases where register numbers genuinely interact
  // with bank assignment (paper Section 9). Every other temp takes any
  // free register of its bank in a post-pass; the transfer-bank capacity
  // rows emitted in buildKConstraints keep that pass feasible.
  std::set<Temp> Critical;
  for (const Block &Blk : M.Blocks)
    for (const MachineInstr &MI : Blk.Instrs) {
      switch (MI.Op) {
      case MOp::MemRead:
        if (MI.Dsts.size() >= 2)
          for (Temp D : MI.Dsts)
            Critical.insert(D);
        break;
      case MOp::MemWrite:
        if (MI.Srcs.size() >= 3) // addr + at least two values
          for (unsigned K = 1; K != MI.Srcs.size(); ++K)
            Critical.insert(MI.Srcs[K].T);
        break;
      case MOp::Hash:
        Critical.insert(MI.Dsts[0]);
        Critical.insert(MI.Srcs[0].T);
        break;
      case MOp::BitTestSet:
        Critical.insert(MI.Dsts[0]);
        Critical.insert(MI.Srcs[1].T);
        break;
      default:
        break;
      }
    }
  // Criticality extends over clone sets (clone color ties).
  {
    std::set<Temp> Reps;
    for (Temp V : Critical)
      Reps.insert(Banks.cloneRep(V));
    for (Temp V = 0; V != M.NumTemps; ++V)
      if (Reps.count(Banks.cloneRep(V)))
        Critical.insert(V);
  }

  auto EnsureColors = [&](Temp V, Bank B) -> std::array<VarId, 8> & {
    auto It = ColorVars.find({V, bankIdx(B)});
    if (It != ColorVars.end())
      return It->second;
    std::array<VarId, 8> &Arr = ColorVars[{V, bankIdx(B)}];
    LinExpr Sum;
    for (unsigned R = 0; R != 8; ++R) {
      Arr[R] = Ilp.addBinary(formatf("col_t%u_%s_%u", V, bankName(B), R));
      Sum += LinExpr(Arr[R]);
    }
    Ilp.addConstraint(std::move(Sum), Rel::EQ, 1.0,
                      formatf("onecolor_t%u_%s", V, bankName(B)));
    return Arr;
  };

  // Pairs whose distinct colors in a given bank are already implied by
  // the adjacency chain of one aggregate in that bank (no pairwise
  // constraint needed there; other banks still need one).
  std::set<std::tuple<Temp, Temp, uint8_t>> AggMates;

  // 1. Aggregates: adjacency + the paper's "redundant" position bounds.
  auto Aggregate = [&](const std::vector<Temp> &Members, Bank B) {
    unsigned N = Members.size();
    if (N < 2)
      return; // singletons take any register in the post-pass
    for (unsigned I = 0; I != N; ++I)
      for (unsigned J = I + 1; J != N; ++J)
        AggMates.insert({std::min(Members[I], Members[J]),
                         std::max(Members[I], Members[J]), bankIdx(B)});
    for (unsigned K = 0; K != N; ++K) {
      auto &CK = EnsureColors(Members[K], B);
      for (unsigned R = 0; R != 8; ++R)
        if (R < K || R > 8 - N + K)
          Ilp.fix(CK[R], 0.0);
    }
    for (unsigned K = 0; K + 1 < N; ++K) {
      auto &CK = EnsureColors(Members[K], B);
      auto &CK1 = EnsureColors(Members[K + 1], B);
      for (unsigned R = K; R + 1 <= 8 - N + K + 1 && R + 1 < 8; ++R)
        Ilp.addConstraint(LinExpr(CK[R]) - LinExpr(CK1[R + 1]), Rel::EQ,
                          0.0, formatf("agg_t%u_r%u", Members[K], R));
    }
  };

  for (const Block &Blk : M.Blocks) {
    for (unsigned I = 0; I != Blk.Instrs.size(); ++I) {
      const MachineInstr &MI = Blk.Instrs[I];
      PointId P1 = Points.pointAt(Blk.Id, I);
      PointId P2 = P1 + 1;
      switch (MI.Op) {
      case MOp::MemRead:
        Aggregate(MI.Dsts,
                  MI.Space == MemSpace::Sdram ? Bank::LD : Bank::L);
        break;
      case MOp::MemWrite: {
        std::vector<Temp> Vals;
        for (unsigned K = 1; K != MI.Srcs.size(); ++K)
          Vals.push_back(MI.Srcs[K].T);
        Aggregate(Vals, MI.Space == MemSpace::Sdram ? Bank::SD : Bank::S);
        break;
      }
      case MOp::Hash:
      case MOp::BitTestSet: {
        // SameReg: the result's L register equals the operand's S
        // register (paper Section 9).
        Temp D = MI.Dsts[0];
        Temp S = MI.Op == MOp::Hash ? MI.Srcs[0].T : MI.Srcs[1].T;
        auto &CD = EnsureColors(D, Bank::L);
        auto &CS = EnsureColors(S, Bank::S);
        for (unsigned R = 0; R != 8; ++R)
          Ilp.addConstraint(LinExpr(CD[R]) - LinExpr(CS[R]), Rel::EQ, 0.0,
                            formatf("samereg_t%u_r%u", D, R));
        break;
      }
      case MOp::Clone: {
        // Conditional color tie: when a clone starts in transfer bank B,
        // it shares the original's register there. Only color-critical
        // sets carry ILP colors; the post-pass handles the rest.
        Temp S = MI.Srcs[0].T;
        if (!Critical.count(S))
          break;
        for (Temp D : MI.Dsts) {
          for (Bank B : TransferBanks) {
            if (!Banks.allowed(S, B) || !Banks.allowed(D, B))
              continue;
            uint32_t CD = classOf(P2, D, /*AfterSide=*/false);
            auto &ColD = EnsureColors(D, B);
            auto &ColS = EnsureColors(S, B);
            for (unsigned R = 0; R != 8; ++R) {
              // |ColD - ColS| <= 1 - Loc(D starts in B).
              Ilp.addConstraint(LinExpr(ColD[R]) - LinExpr(ColS[R]) +
                                    locExpr(CD, B),
                                Rel::LE, 1.0);
              Ilp.addConstraint(LinExpr(ColS[R]) - LinExpr(ColD[R]) +
                                    locExpr(CD, B),
                                Rel::LE, 1.0);
            }
          }
        }
        break;
      }
      default:
        break;
      }
    }
  }

  // 2. Interference: co-located color-critical temps in one transfer
  // bank need distinct registers (a per-(pair, bank) co-location
  // indicator keeps the row count linear in co-live points). Pairs
  // inside one aggregate are already distinct via the adjacency chain.
  struct PairInfo {
    std::set<std::pair<uint32_t, uint32_t>> ClassPairs;
  };
  std::map<std::tuple<Temp, Temp, uint8_t>, PairInfo> Pairs;
  for (PointId P = 0; P != Points.numPoints(); ++P) {
    const std::set<Temp> &Live = Points.existsAt(P);
    for (auto It1 = Live.begin(); It1 != Live.end(); ++It1)
      for (auto It2 = std::next(It1); It2 != Live.end(); ++It2) {
        Temp V1 = *It1, V2 = *It2;
        if (!Critical.count(V1) || !Critical.count(V2))
          continue;
        if (Banks.sameCloneSet(V1, V2))
          continue; // clones do not interfere (Section 10)
        for (Bank B : TransferBanks) {
          if (AggMates.count(
                  {std::min(V1, V2), std::max(V1, V2), bankIdx(B)}))
            continue;
          if (!Banks.allowed(V1, B) || !Banks.allowed(V2, B))
            continue;
          for (unsigned Side = 0; Side != 2; ++Side) {
            uint32_t C1 = classOf(P, V1, Side != 0);
            uint32_t C2 = classOf(P, V2, Side != 0);
            Pairs[{V1, V2, bankIdx(B)}].ClassPairs.insert({C1, C2});
          }
        }
      }
  }
  Stats.InterferingPairs = Pairs.size();
  for (auto &[Key, Info] : Pairs) {
    auto [V1, V2, BI] = Key;
    Bank B = static_cast<Bank>(BI);
    VarId CoLive = Ilp.addBinary(
        formatf("colive_t%u_t%u_%s", V1, V2, bankName(B)));
    for (auto &[C1, C2] : Info.ClassPairs)
      Ilp.addConstraint(LinExpr(CoLive) - locExpr(C1, B) - locExpr(C2, B),
                        Rel::GE, -1.0);
    auto &Col1 = EnsureColors(V1, B);
    auto &Col2 = EnsureColors(V2, B);
    for (unsigned R = 0; R != 8; ++R)
      Ilp.addConstraint(LinExpr(Col1[R]) + LinExpr(Col2[R]) +
                            LinExpr(CoLive),
                        Rel::LE, 2.0,
                        formatf("distinct_t%u_t%u_r%u", V1, V2, R));
  }

  // 3. Spill spare registers: a move whose data path transits L or S at a
  // point needs a free register there (paper Section 9, "K and Spilling
  // for transfer banks").
  if (!Opts.AllowSpills)
    return;
  for (const auto &Key : MovePointList) {
    auto [P, V] = Key;
    const auto &Vars = MoveVars.at(Key);
    for (Bank Transit : {Bank::L, Bank::S}) {
      LinExpr NeedsSum;
      bool Any = false;
      for (auto &[BB, MV] : Vars) {
        Bank B1 = static_cast<Bank>(BB.first);
        Bank B2 = static_cast<Bank>(BB.second);
        if (B1 == B2)
          continue;
        auto Path = interBankMovePath(B1, B2, Opts.AllowSpills);
        if (!Path)
          continue;
        bool Transits = false;
        for (unsigned K = 1; K + 1 < Path->size(); ++K)
          Transits |= (*Path)[K] == Transit;
        if (Transits) {
          NeedsSum += LinExpr(MV);
          Any = true;
        }
      }
      if (!Any)
        continue;
      VarId Needs = Ilp.addBinary(
          formatf("needspill_p%u_t%u_%s", P, V, bankName(Transit)));
      // needs >= each transiting move; needs <= sum (tightening).
      Ilp.addConstraint(LinExpr(Needs) - NeedsSum, Rel::LE, 0.0);
      for (auto &[BB, MV] : Vars) {
        Bank B1 = static_cast<Bank>(BB.first);
        Bank B2 = static_cast<Bank>(BB.second);
        if (B1 == B2)
          continue;
        auto Path = interBankMovePath(B1, B2, Opts.AllowSpills);
        if (!Path)
          continue;
        bool Transits = false;
        for (unsigned K = 1; K + 1 < Path->size(); ++K)
          Transits |= (*Path)[K] == Transit;
        if (Transits)
          Ilp.addConstraint(LinExpr(Needs) - LinExpr(MV), Rel::GE, 0.0);
      }
      // Occupancy of the transit bank at P must leave one register free.
      LinExpr Occupied;
      unsigned Residents = 0;
      for (Temp U : Points.existsAt(P)) {
        if (!Banks.allowed(U, Transit))
          continue;
        VarId Occ = Ilp.addBinary(
            formatf("occ_p%u_t%u_%s", P, U, bankName(Transit)));
        for (unsigned Side = 0; Side != 2; ++Side) {
          uint32_t C = classOf(P, U, Side != 0);
          Ilp.addConstraint(LinExpr(Occ) - locExpr(C, Transit), Rel::GE,
                            0.0);
        }
        Occupied += LinExpr(Occ);
        ++Residents;
      }
      if (Residents >= bankCapacity(Transit))
        Ilp.addConstraint(Occupied + LinExpr(Needs), Rel::LE,
                          static_cast<double>(bankCapacity(Transit)));
    }
  }
}

//===----------------------------------------------------------------------===//
// Clone counting in the objective + the objective itself (Section 7)
//===----------------------------------------------------------------------===//

void AllocModel::buildCloneCounting() {
  // Group move points at the same program point by clone set; members of
  // a group have their move cost counted once through a cloneMove
  // variable (paper Section 10).
  std::map<std::pair<PointId, Temp>, std::vector<std::pair<PointId, Temp>>>
      Grouped;
  for (const auto &Key : MovePointList)
    Grouped[{Key.first, Banks.cloneRep(Key.second)}].push_back(Key);
  for (auto &[GroupKey, Members] : Grouped) {
    if (Members.size() < 2)
      continue;
    ++Stats.CloneSets;
    double Weight = Freq.blockFreq(Points.blockOf(GroupKey.first));
    // For each (b1,b2) pair appearing in any member, one shared counter.
    std::set<std::pair<uint8_t, uint8_t>> AllPairs;
    for (const auto &MK : Members)
      for (auto &[BB, MV] : MoveVars.at(MK))
        if (BB.first != BB.second)
          AllPairs.insert(BB);
    for (auto &BB : AllPairs) {
      Bank B1 = static_cast<Bank>(BB.first);
      Bank B2 = static_cast<Bank>(BB.second);
      auto Cost = interBankMoveCost(B1, B2, Opts.Costs, Opts.AllowSpills);
      if (!Cost || *Cost == 0.0)
        continue;
      VarId CM = Ilp.addBinary(
          formatf("clonemv_p%u_s%u_%s_%s", GroupKey.first, GroupKey.second,
                  bankName(B1), bankName(B2)),
          Weight * *Cost);
      for (const auto &MK : Members) {
        auto It = MoveVars.at(MK).find(BB);
        if (It != MoveVars.at(MK).end())
          Ilp.addConstraint(LinExpr(CM) - LinExpr(It->second), Rel::GE,
                            0.0);
      }
    }
    for (const auto &MK : Members)
      MoveCostCountedViaCloneSet[MK] = true;
  }
}

void AllocModel::buildObjective() {
  for (const auto &Key : MovePointList) {
    if (MoveCostCountedViaCloneSet.count(Key))
      continue;
    double Weight = Freq.blockFreq(Points.blockOf(Key.first));
    for (auto &[BB, MV] : MoveVars.at(Key)) {
      Bank B1 = static_cast<Bank>(BB.first);
      Bank B2 = static_cast<Bank>(BB.second);
      if (B1 == B2)
        continue;
      auto Cost = interBankMoveCost(B1, B2, Opts.Costs, Opts.AllowSpills);
      if (Cost && *Cost > 0.0)
        Ilp.var(MV).Objective += Weight * *Cost;
    }
  }
}

void AllocModel::computeRawStats() {
  unsigned E = Points.totalExists();
  unsigned NumXferColorTemps = 0;
  for (Temp V = 0; V != M.NumTemps; ++V)
    for (Bank B : TransferBanks)
      if (Banks.allowed(V, B))
        ++NumXferColorTemps;
  // A per-point formulation over 7 banks: Move 49 + Before 7 + After 7
  // per (point, temp); colors 8 per (temp, transfer bank); colorAvail
  // 16 per point.
  Stats.RawVariables = 63 * E + 8 * NumXferColorTemps +
                       16 * Points.numPoints();
  // in-before/in-after links (14), one-place (1) per (p,v); copy (7 per
  // entry); K (4 per point); interference bundles dominated by pairs.
  Stats.RawConstraints = 15 * E + 7 * Points.copies().size() +
                         4 * Points.numPoints();
}

bool AllocModel::build(DiagnosticEngine &Diags) {
  Stats.NumPoints = Points.numPoints();
  Stats.ExistsSize = Points.totalExists();
  Stats.CopySize = Points.copies().size();
  computeMovePoints();
  buildSegments();
  buildLocVars();
  buildMoves();
  if (!buildInstrConstraints(Diags))
    return false;
  buildKConstraints();
  buildColors();
  buildCloneCounting();
  buildObjective();
  computeRawStats();
  return true;
}

//===----------------------------------------------------------------------===//
// Solution queries
//===----------------------------------------------------------------------===//

Bank AllocModel::bankAt(const std::vector<double> &X, PointId P, Temp V,
                        bool AfterSide) const {
  uint32_t C = classOf(P, V, AfterSide);
  for (Bank B : Banks.allowedBanks(V))
    if (locValue(X, C, B) > 0.5)
      return B;
  NOVA_UNREACHABLE("solution assigns no bank");
}

std::optional<unsigned> AllocModel::colorOf(const std::vector<double> &X,
                                            Temp V, Bank B) const {
  auto It = ColorVars.find({V, bankIdx(B)});
  if (It == ColorVars.end())
    return std::nullopt;
  for (unsigned R = 0; R != 8; ++R)
    if (X[It->second[R].Index] > 0.5)
      return R;
  return std::nullopt;
}

std::optional<std::pair<Bank, Bank>>
AllocModel::chosenMovePair(const std::vector<double> &X, PointId P,
                           Temp V) const {
  auto It = MoveVars.find({P, V});
  if (It == MoveVars.end())
    return std::nullopt;
  for (auto &[BB, MV] : It->second)
    if (X[MV.Index] > 0.5)
      return std::make_pair(static_cast<Bank>(BB.first),
                            static_cast<Bank>(BB.second));
  return std::nullopt;
}

std::optional<std::pair<Bank, Bank>>
AllocModel::moveAt(const std::vector<double> &X, PointId P, Temp V) const {
  auto It = MoveVars.find({P, V});
  if (It == MoveVars.end())
    return std::nullopt;
  for (auto &[BB, MV] : It->second) {
    if (BB.first == BB.second)
      continue;
    if (X[MV.Index] > 0.5)
      return std::make_pair(static_cast<Bank>(BB.first),
                            static_cast<Bank>(BB.second));
  }
  return std::nullopt;
}

unsigned AllocModel::countMoves(const std::vector<double> &X) const {
  std::set<std::tuple<PointId, Temp, uint8_t, uint8_t>> Counted;
  for (const auto &Key : MovePointList) {
    auto Mv = moveAt(X, Key.first, Key.second);
    if (!Mv)
      continue;
    Temp Rep = Banks.cloneRep(Key.second);
    Counted.insert({Key.first, Rep, bankIdx(Mv->first), bankIdx(Mv->second)});
  }
  return Counted.size();
}

unsigned AllocModel::countSpills(const std::vector<double> &X) const {
  unsigned N = 0;
  for (const auto &Key : MovePointList) {
    auto Mv = moveAt(X, Key.first, Key.second);
    if (!Mv)
      continue;
    auto Path = interBankMovePath(Mv->first, Mv->second, Opts.AllowSpills);
    if (!Path)
      continue;
    for (Bank B : *Path)
      if (B == Bank::M) {
        ++N;
        break;
      }
  }
  return N;
}

std::string AllocModel::dumpSetsAmpl(const MachineProgram &Prog) const {
  std::ostringstream OS;
  OS << "set P := {";
  for (PointId P = 0; P != Points.numPoints(); ++P)
    OS << (P ? " " : "") << 'p' << P;
  OS << "}\nset V := {";
  bool First = true;
  std::set<Temp> AllTemps;
  for (PointId P = 0; P != Points.numPoints(); ++P)
    for (Temp V : Points.existsAt(P))
      AllTemps.insert(V);
  for (Temp V : AllTemps) {
    OS << (First ? "" : " ") << Prog.tempName(V);
    First = false;
  }
  OS << "}\n";

  auto DumpAgg = [&](const char *Name, MOp Op, MemSpace WantSdram,
                     bool IsRead) {
    OS << "set " << Name << " := {";
    bool F = true;
    for (const Block &Blk : Prog.Blocks)
      for (unsigned I = 0; I != Blk.Instrs.size(); ++I) {
        const MachineInstr &MI = Blk.Instrs[I];
        bool SdramWanted = WantSdram == MemSpace::Sdram;
        bool IsSdram = MI.Space == MemSpace::Sdram;
        if (MI.Op != Op || SdramWanted != IsSdram)
          continue;
        OS << (F ? "" : " ") << "(p" << Points.pointAt(Blk.Id, I) << ", p"
           << Points.pointAt(Blk.Id, I + 1);
        if (IsRead)
          for (Temp D : MI.Dsts)
            OS << ", " << Prog.tempName(D);
        else
          for (unsigned K = 1; K != MI.Srcs.size(); ++K)
            OS << ", " << Prog.tempName(MI.Srcs[K].T);
        OS << ")";
        F = false;
      }
    OS << "}\n";
  };
  DumpAgg("DefL", MOp::MemRead, MemSpace::Sram, true);
  DumpAgg("DefLD", MOp::MemRead, MemSpace::Sdram, true);
  DumpAgg("UseS", MOp::MemWrite, MemSpace::Sram, false);
  DumpAgg("UseSD", MOp::MemWrite, MemSpace::Sdram, false);

  OS << "set Exists := {";
  First = true;
  for (PointId P = 0; P != Points.numPoints(); ++P)
    for (Temp V : Points.existsAt(P)) {
      OS << (First ? "" : " ") << "(p" << P << ", " << Prog.tempName(V)
         << ")";
      First = false;
    }
  OS << "}\nset Copy := {";
  First = true;
  for (const PointMap::CopyEntry &C : Points.copies()) {
    OS << (First ? "" : " ") << "(p" << C.P1 << ", p" << C.P2 << ", "
       << Prog.tempName(C.V) << ")";
    First = false;
  }
  OS << "}\n";
  return OS.str();
}
