//===- Allocated.h - Register-allocated machine code ------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The allocator's output: the same flowgraph with every operand resolved
/// to a physical register (bank + index). Spill traffic appears as
/// scratch reads/writes whose addresses are immediates (spill slots).
/// Clone pseudos are gone; Move instructions whose source and destination
/// coincide were coalesced away.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_ALLOCATED_H
#define ALLOC_ALLOCATED_H

#include "ixp/MachineIr.h"

#include <string>
#include <vector>

namespace nova {
namespace alloc {

/// A physical register: bank + index within the bank.
struct PhysLoc {
  ixp::Bank B = ixp::Bank::A;
  uint16_t Reg = 0;

  bool operator==(const PhysLoc &O) const { return B == O.B && Reg == O.Reg; }
  std::string str() const;
};

/// Operand of an allocated instruction.
struct AOperand {
  bool IsConst = false;
  PhysLoc Loc;
  uint32_t Value = 0;

  static AOperand reg(PhysLoc L) { return {false, L, 0}; }
  static AOperand constant(uint32_t V) { return {true, {}, V}; }
};

struct AllocInstr {
  ixp::MOp Op = ixp::MOp::Halt;
  cps::PrimOp Alu = cps::PrimOp::Add;
  cps::CmpOp Cmp = cps::CmpOp::Eq;
  MemSpace Space = MemSpace::Sram;
  uint32_t Imm = 0;
  std::vector<AOperand> Srcs;
  std::vector<PhysLoc> Dsts;
  ixp::BlockId Target = ixp::NoBlock;
  ixp::BlockId TargetElse = ixp::NoBlock;
  /// True for instructions the allocator inserted (moves/spill traffic).
  bool Inserted = false;
};

struct AllocBlock {
  std::vector<AllocInstr> Instrs;
};

struct AllocatedProgram {
  std::vector<AllocBlock> Blocks;
  ixp::BlockId Entry = ixp::NoBlock;
  unsigned NumEntryArgs = 0; ///< arrive in A0..A(n-1)
  /// Scratch base address of the spill area (slots are words from here).
  uint32_t SpillBase = 0x8000;
  unsigned NumSpillSlots = 0;

  unsigned numInstructions() const {
    unsigned N = 0;
    for (const AllocBlock &B : Blocks)
      N += B.Instrs.size();
    return N;
  }

  /// Count of allocator-inserted instructions (move/spill overhead).
  unsigned numInserted() const {
    unsigned N = 0;
    for (const AllocBlock &B : Blocks)
      for (const AllocInstr &I : B.Instrs)
        N += I.Inserted ? 1 : 0;
    return N;
  }

  std::string print() const;
};

} // namespace alloc
} // namespace nova

#endif // ALLOC_ALLOCATED_H
