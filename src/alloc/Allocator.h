//===- Allocator.h - ILP-based register/bank allocator ----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back end's centerpiece: solves bank assignment, transfer-bank
/// coloring, spilling, and cloning as one 0-1 ILP (paper Sections 5-10),
/// then:
///  - assigns A/B register numbers with an optimistic-coalescing coloring
///    pass in the style of Park-Moon / Appel-George (Section 9);
///  - materializes the chosen inter-bank moves (multi-step paths through
///    spill memory included) with parallel-move sequencing, using the
///    reserved A register to break copy cycles (Section 6);
///  - emits the fully allocated program.
///
/// The fast path solves a spill-free model first and retries with spills
/// enabled only if that is infeasible — the refinement the paper reports
/// reduces AES solve time from 35.9s to 9s (Section 11).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_ALLOCATOR_H
#define ALLOC_ALLOCATOR_H

#include "alloc/Allocated.h"
#include "alloc/IlpModel.h"
#include "ilp/MipSolver.h"
#include "support/Status.h"

namespace nova {
namespace alloc {

/// How far down the degradation ladder the allocator may descend when the
/// ILP does not deliver a proved optimum. Each policy admits every rung
/// of the one before it.
enum class OnIlpFailure : uint8_t {
  Error,     ///< proved optimum or nothing: any other exit is an error
  Incumbent, ///< also accept a feasible incumbent / spill-aware recovery
  Baseline   ///< also fall back to the heuristic memory-home allocator
};

/// Which rung of the ladder produced the accepted program.
enum class AllocRung : uint8_t {
  Optimal,    ///< ILP solved to proved optimality (the paper's pipeline)
  Incumbent,  ///< best feasible incumbent at the time/node limit
  SpillRetry, ///< spill-aware model rescued a failed spill-free solve
  Baseline    ///< heuristic memory-home allocation (correct, but slow code)
};

const char *onIlpFailureName(OnIlpFailure P);
const char *rungName(AllocRung R);

/// Parses "error" / "incumbent" / "baseline"; false on anything else.
bool parseOnIlpFailure(const std::string &Text, OnIlpFailure &Out);

struct AllocOptions {
  ModelOptions Model;
  ilp::MipOptions Mip;
  uint32_t SpillBase = 0x8000;
  /// Skip the spill-free fast path and always build the full spill-aware
  /// model (ablation).
  bool ForceSpillModel = false;
  /// Deepest ladder rung the caller is willing to accept.
  OnIlpFailure FailurePolicy = OnIlpFailure::Incumbent;
};

/// Everything the paper's Figures 6 and 7 report, per program, plus the
/// degradation-ladder outcome.
struct AllocStats {
  BuildStats Build;
  ilp::ModelStats IlpSize;
  ilp::MipStats Solve;
  double Objective = 0.0;
  unsigned Moves = 0;
  unsigned Spills = 0;
  bool UsedSpillModel = false;
  /// Ladder rung that produced the accepted program (meaningful when the
  /// allocation succeeded).
  AllocRung Rung = AllocRung::Optimal;
  /// True iff the solver proved the accepted solution optimal.
  bool ProvedOptimal = false;
  /// Solve attempts the ladder made (model builds + baseline).
  unsigned LadderAttempts = 0;
  /// Verifier violations seen across *rejected* rungs. The accepted
  /// program always has zero: no rung may emit unverified code.
  unsigned VerifierViolations = 0;
};

struct AllocationResult {
  bool Ok = false;
  Status Error;
  AllocatedProgram Prog;
  AllocStats Stats;
};

/// Runs the full ILP allocation pipeline on \p M.
AllocationResult allocate(const ixp::MachineProgram &M,
                          DiagnosticEngine &Diags,
                          const AllocOptions &Opts = {});

} // namespace alloc
} // namespace nova

#endif // ALLOC_ALLOCATOR_H
