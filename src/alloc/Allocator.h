//===- Allocator.h - ILP-based register/bank allocator ----------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The back end's centerpiece: solves bank assignment, transfer-bank
/// coloring, spilling, and cloning as one 0-1 ILP (paper Sections 5-10),
/// then:
///  - assigns A/B register numbers with an optimistic-coalescing coloring
///    pass in the style of Park-Moon / Appel-George (Section 9);
///  - materializes the chosen inter-bank moves (multi-step paths through
///    spill memory included) with parallel-move sequencing, using the
///    reserved A register to break copy cycles (Section 6);
///  - emits the fully allocated program.
///
/// The fast path solves a spill-free model first and retries with spills
/// enabled only if that is infeasible — the refinement the paper reports
/// reduces AES solve time from 35.9s to 9s (Section 11).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_ALLOCATOR_H
#define ALLOC_ALLOCATOR_H

#include "alloc/Allocated.h"
#include "alloc/IlpModel.h"
#include "ilp/MipSolver.h"

namespace nova {
namespace alloc {

struct AllocOptions {
  ModelOptions Model;
  ilp::MipOptions Mip;
  uint32_t SpillBase = 0x8000;
  /// Skip the spill-free fast path and always build the full spill-aware
  /// model (ablation).
  bool ForceSpillModel = false;
};

/// Everything the paper's Figures 6 and 7 report, per program.
struct AllocStats {
  BuildStats Build;
  ilp::ModelStats IlpSize;
  ilp::MipStats Solve;
  double Objective = 0.0;
  unsigned Moves = 0;
  unsigned Spills = 0;
  bool UsedSpillModel = false;
};

struct AllocationResult {
  bool Ok = false;
  std::string Error;
  AllocatedProgram Prog;
  AllocStats Stats;
};

/// Runs the full ILP allocation pipeline on \p M.
AllocationResult allocate(const ixp::MachineProgram &M,
                          DiagnosticEngine &Diags,
                          const AllocOptions &Opts = {});

} // namespace alloc
} // namespace nova

#endif // ALLOC_ALLOCATOR_H
