//===- BankAnalysis.h - Section 8 variable pruning --------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static analysis of paper Section 8 ("A million variables"): for
/// each temporary, the set of banks it could ever usefully occupy. A
/// temporary loaded from SRAM that is never stored anywhere has no reason
/// to ever be in S, SD, or LD; ruling such banks out shrinks the ILP
/// dramatically without affecting optimality in practice.
///
/// Rules implemented (unioned over all def/use sites of the temp):
///  - A and B are always allowed (general-purpose);
///  - L  iff defined by an SRAM/scratch read, a hash, or a bit-test-set;
///  - LD iff defined by an SDRAM read;
///  - S  iff consumed by an SRAM/scratch write, a hash, or a bit-test-set;
///  - SD iff consumed by an SDRAM write;
///  - M  (spill memory) as directed by the caller: spill-enabled models
///    allow it everywhere, the fast path omits it and retries on
///    infeasibility (the paper's "determine whether spills are required
///    at all" refinement, Section 11);
///  - clone sets share their allowed banks (a clone starts wherever its
///    original is).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_BANKANALYSIS_H
#define ALLOC_BANKANALYSIS_H

#include "ixp/MachineIr.h"

#include <vector>

namespace nova {
namespace alloc {

/// Allowed-bank sets per temporary, as small bitmasks indexed by Bank.
class BankAnalysis {
public:
  BankAnalysis(const ixp::MachineProgram &M, bool AllowSpills);

  bool allowed(ixp::Temp T, ixp::Bank B) const {
    return (Masks[T] >> static_cast<unsigned>(B)) & 1;
  }

  /// All allowed banks of \p T in enum order.
  std::vector<ixp::Bank> allowedBanks(ixp::Temp T) const;

  unsigned allowedCount(ixp::Temp T) const {
    return __builtin_popcount(Masks[T]);
  }

  /// Representative of the clone set containing \p T (union-find root);
  /// temps not involved in clones are their own representative.
  ixp::Temp cloneRep(ixp::Temp T) const;

  /// True if T and U are clones of one another (same clone set).
  bool sameCloneSet(ixp::Temp T, ixp::Temp U) const {
    return cloneRep(T) == cloneRep(U);
  }

private:
  std::vector<uint16_t> Masks;
  mutable std::vector<ixp::Temp> CloneParent;
};

} // namespace alloc
} // namespace nova

#endif // ALLOC_BANKANALYSIS_H
