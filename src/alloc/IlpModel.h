//===- IlpModel.h - The paper's ILP allocation model ------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Builds the 0-1 integer linear program of paper Sections 5-10: optimal
/// bank assignment with spills, transfer-bank coloring of aggregates, and
/// cloning, minimizing frequency-weighted inter-bank move cost.
///
/// Engineering note (Section 8 of the paper stresses that reducing
/// redundant variables is critical; we follow through): residencies are
/// modeled per *segment* — a maximal region of program points across
/// which a temporary cannot change banks because no move opportunity
/// exists there. One Loc variable per (segment, bank) replaces the
/// paper's per-point Before/After variables; Move variables appear only
/// at move points. The semantics are identical: Before/After at a point
/// are the Loc variables of the segments meeting there. The "raw" counts
/// a per-point formulation would have generated are also reported, for
/// comparison with the paper's Figure 7.
///
/// Move opportunities for temporary v (option-controlled):
///  - points adjacent to an instruction that defines or uses v;
///  - block entry and exit points where v is live;
///  - points directly before memory/hash instructions when v can occupy
///    a transfer bank (room must be made for aggregates);
///  - with spills enabled, points directly before any defining
///    instruction (general-purpose pressure events).
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_ILPMODEL_H
#define ALLOC_ILPMODEL_H

#include "alloc/BankAnalysis.h"
#include "alloc/Points.h"
#include "ilp/Model.h"
#include "ixp/Frequency.h"
#include "ixp/Machine.h"
#include "support/Diagnostics.h"

#include <map>
#include <optional>

namespace nova {
namespace alloc {

using ixp::Bank;

/// Options of a model build.
struct ModelOptions {
  /// Allow the spill bank M. The fast path solves without spills first
  /// and retries with them on infeasibility (paper Section 11's "another
  /// objective ... determine whether spills are required at all").
  bool AllowSpills = false;
  /// Restrict move opportunities as described above; turning this off
  /// allows a move for every live temporary at every point (the paper's
  /// unreduced formulation) for the ablation benchmark.
  bool RestrictMovePoints = true;
  ixp::CostModel Costs;
};

/// Aggregate-participation statistics (paper Figure 6).
struct AggregateStats {
  unsigned DefL = 0;  ///< temps defined by SRAM/scratch reads
  unsigned DefLD = 0; ///< temps defined by SDRAM reads
  unsigned UseS = 0;  ///< temps consumed by SRAM/scratch writes
  unsigned UseSD = 0; ///< temps consumed by SDRAM writes
};

/// Size statistics of the built model, including what a naive per-point
/// formulation would have generated (the paper's raw sizes).
struct BuildStats {
  AggregateStats Aggregates;
  unsigned NumPoints = 0;
  unsigned ExistsSize = 0;
  unsigned CopySize = 0;
  unsigned NumSegments = 0;
  unsigned NumMovePoints = 0;
  unsigned InterferingPairs = 0;
  unsigned CloneSets = 0;
  /// Variables/constraints a per-point model (7 banks) would have.
  unsigned RawVariables = 0;
  unsigned RawConstraints = 0;
};

/// The built model plus everything solution extraction needs.
class AllocModel {
public:
  AllocModel(const ixp::MachineProgram &M, const ixp::Liveness &LV,
             const PointMap &Points, const ixp::FrequencyInfo &Freq,
             const BankAnalysis &Banks, const ModelOptions &Opts);

  /// Emits all variables and constraints. Returns false when the program
  /// is structurally unallocatable (diagnosed).
  bool build(DiagnosticEngine &Diags);

  ilp::Model &model() { return Ilp; }
  const ilp::Model &model() const { return Ilp; }
  const BuildStats &stats() const { return Stats; }

  //===--------------------------------------------------------------------===//
  // Solution queries (given the solved variable vector X in model space)
  //===--------------------------------------------------------------------===//

  /// Bank of \p V at point \p P (side = false: before moves, true:
  /// after). V must exist at P.
  Bank bankAt(const std::vector<double> &X, PointId P, Temp V,
              bool AfterSide) const;

  /// Transfer-bank register number of \p V in bank \p B (0..7). Only
  /// meaningful if V may occupy B.
  std::optional<unsigned> colorOf(const std::vector<double> &X, Temp V,
                                  Bank B) const;

  /// The inter-bank move of \p V at point \p P in the solution, if any.
  std::optional<std::pair<Bank, Bank>>
  moveAt(const std::vector<double> &X, PointId P, Temp V) const;

  /// Like moveAt but also reports identity moves (bank unchanged across
  /// the move opportunity); nullopt only when (P,V) is not a move point.
  std::optional<std::pair<Bank, Bank>>
  chosenMovePair(const std::vector<double> &X, PointId P, Temp V) const;

  /// Segment (location-region) id of V at (P, side); values at the same
  /// segment share one Loc decision.
  uint32_t segmentOf(PointId P, Temp V, bool AfterSide) const {
    return classOf(P, V, AfterSide);
  }

  /// Whether a move opportunity exists for (P, V).
  bool isMovePoint(PointId P, Temp V) const;

  /// Number of distinct inter-bank moves in a solution (clone-set moves
  /// with identical endpoints counted once, as in the objective).
  unsigned countMoves(const std::vector<double> &X) const;

  /// Number of spills (moves whose path passes through spill memory M).
  unsigned countSpills(const std::vector<double> &X) const;

  /// Renders the model's data sets in the paper's AMPL-like notation
  /// (Figure 3).
  std::string dumpSetsAmpl(const ixp::MachineProgram &M) const;

private:
  // Slot/segment machinery.
  struct SlotRef {
    uint32_t Class = ~0u;
  };
  uint32_t slotIndex(PointId P, Temp V, bool AfterSide) const;
  uint32_t classOf(PointId P, Temp V, bool AfterSide) const;
  uint32_t findRoot(uint32_t Slot) const;

  std::optional<ilp::VarId> locVar(uint32_t Class, Bank B) const;
  /// 0/1 value of a Loc in a solution (handles fixed single-bank temps).
  double locValue(const std::vector<double> &X, uint32_t Class,
                  Bank B) const;
  ilp::LinExpr locExpr(uint32_t Class, Bank B) const;

  void computeMovePoints();
  void buildSegments();
  void buildLocVars();
  void buildMoves();
  bool buildInstrConstraints(DiagnosticEngine &Diags);
  void buildKConstraints();
  void buildColors();
  void buildCloneCounting();
  void buildObjective();
  void computeRawStats();

  const ixp::MachineProgram &M;
  const ixp::Liveness &LV;
  const PointMap &Points;
  const ixp::FrequencyInfo &Freq;
  const BankAnalysis &Banks;
  ModelOptions Opts;

  ilp::Model Ilp;
  BuildStats Stats;

  // Slot enumeration: (P, V) -> base slot id; before = base, after = base+1.
  std::map<std::pair<PointId, Temp>, uint32_t> SlotBase;
  mutable std::vector<uint32_t> Dsu;
  std::vector<Temp> TempOfSlot;

  // Per-class variables: (class, bank) -> VarId. Classes with a single
  // allowed bank get no variables (their location is that bank).
  std::map<std::pair<uint32_t, uint8_t>, ilp::VarId> Loc;
  // Move variables: (P, V) -> map (b1,b2) -> VarId.
  std::map<std::pair<PointId, Temp>,
           std::map<std::pair<uint8_t, uint8_t>, ilp::VarId>>
      MoveVars;
  // Colors: (V, bank) -> 8 vars.
  std::map<std::pair<Temp, uint8_t>, std::array<ilp::VarId, 8>> ColorVars;
  // Clone-move dedup: members whose move objective is replaced.
  std::map<std::pair<PointId, Temp>, bool> MoveCostCountedViaCloneSet;
  std::vector<std::pair<PointId, Temp>> MovePointList;

  std::map<std::pair<PointId, Temp>, bool> MoveAllowed;
};

} // namespace alloc
} // namespace nova

#endif // ALLOC_ILPMODEL_H
