//===- Points.cpp ---------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/Points.h"

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

PointMap::PointMap(const MachineProgram &M, const Liveness &LV) {
  unsigned NumBlocks = M.Blocks.size();
  FirstPoint.resize(NumBlocks);
  NumInstrs.resize(NumBlocks);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    FirstPoint[B] = NumPoints;
    NumInstrs[B] = M.Blocks[B].Instrs.size();
    NumPoints += NumInstrs[B] + 1;
  }
  BlockOfPoint.resize(NumPoints);
  for (unsigned B = 0; B != NumBlocks; ++B)
    for (unsigned P = FirstPoint[B]; P != FirstPoint[B] + NumInstrs[B] + 1;
         ++P)
      BlockOfPoint[P] = B;

  // Exists: live sets, plus dead results at the point after their def.
  Exists.resize(NumPoints);
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const Block &Blk = M.Blocks[B];
    Exists[pointAt(B, 0)] = LV.blockLiveIn(B);
    for (unsigned I = 0; I != Blk.Instrs.size(); ++I) {
      std::set<Temp> At = LV.liveAfter(B, I);
      // Results that are immediately dead still exist at the point after
      // the instruction (paper Section 5.2).
      for (Temp D : instrDefs(Blk.Instrs[I]))
        At.insert(D);
      Exists[pointAt(B, I + 1)] = std::move(At);
    }
  }

  // Control edges.
  for (unsigned B = 0; B != NumBlocks; ++B)
    for (BlockId S : M.Blocks[B].successors())
      Edges.emplace_back(exitPoint(B), entryPoint(S));

  // Copy set: across instructions that do not define v, and along edges.
  for (unsigned B = 0; B != NumBlocks; ++B) {
    const Block &Blk = M.Blocks[B];
    for (unsigned I = 0; I != Blk.Instrs.size(); ++I) {
      PointId P1 = pointAt(B, I), P2 = pointAt(B, I + 1);
      const std::set<Temp> &LiveAfter = LV.liveAfter(B, I);
      std::set<Temp> Defs(instrDefs(Blk.Instrs[I]).begin(),
                          instrDefs(Blk.Instrs[I]).end());
      for (Temp V : Exists[P1])
        if (LiveAfter.count(V) && !Defs.count(V))
          Copies.push_back({P1, P2, V});
    }
  }
  for (auto &[P1, P2] : Edges)
    for (Temp V : Exists[P2])
      if (Exists[P1].count(V))
        Copies.push_back({P1, P2, V});
}
