//===- BankAnalysis.cpp ---------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/BankAnalysis.h"

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {
uint16_t bit(Bank B) { return static_cast<uint16_t>(1u << static_cast<unsigned>(B)); }
} // namespace

Temp BankAnalysis::cloneRep(Temp T) const {
  while (CloneParent[T] != T)
    T = CloneParent[T] = CloneParent[CloneParent[T]];
  return T;
}

BankAnalysis::BankAnalysis(const MachineProgram &M, bool AllowSpills) {
  uint16_t Base = bit(Bank::A) | bit(Bank::B);
  if (AllowSpills)
    Base |= bit(Bank::M);
  Masks.assign(M.NumTemps, Base);
  CloneParent.resize(M.NumTemps);
  for (Temp T = 0; T != M.NumTemps; ++T)
    CloneParent[T] = T;

  auto Unite = [&](Temp A, Temp B) {
    Temp RA = cloneRep(A), RB = cloneRep(B);
    if (RA != RB)
      CloneParent[RB] = RA;
  };

  for (const Block &B : M.Blocks) {
    for (const MachineInstr &I : B.Instrs) {
      switch (I.Op) {
      case MOp::MemRead: {
        Bank Dst = I.Space == MemSpace::Sdram ? Bank::LD : Bank::L;
        for (Temp D : I.Dsts)
          Masks[D] |= bit(Dst);
        break;
      }
      case MOp::MemWrite: {
        Bank Src = I.Space == MemSpace::Sdram ? Bank::SD : Bank::S;
        for (unsigned K = 1; K != I.Srcs.size(); ++K)
          if (!I.Srcs[K].IsConst)
            Masks[I.Srcs[K].T] |= bit(Src);
        break;
      }
      case MOp::Hash:
        Masks[I.Dsts[0]] |= bit(Bank::L);
        if (!I.Srcs[0].IsConst)
          Masks[I.Srcs[0].T] |= bit(Bank::S);
        break;
      case MOp::BitTestSet:
        Masks[I.Dsts[0]] |= bit(Bank::L);
        if (!I.Srcs[1].IsConst)
          Masks[I.Srcs[1].T] |= bit(Bank::S);
        break;
      case MOp::Clone:
        if (!I.Srcs[0].IsConst)
          for (Temp D : I.Dsts)
            Unite(I.Srcs[0].T, D);
        break;
      default:
        break;
      }
    }
  }

  // Clone sets share allowed banks: a clone begins wherever its original
  // is, and may later need any bank its own uses demand.
  std::vector<uint16_t> SetMask(M.NumTemps, 0);
  for (Temp T = 0; T != M.NumTemps; ++T)
    SetMask[cloneRep(T)] |= Masks[T];
  for (Temp T = 0; T != M.NumTemps; ++T)
    Masks[T] = SetMask[cloneRep(T)];
}

std::vector<Bank> BankAnalysis::allowedBanks(Temp T) const {
  std::vector<Bank> Out;
  for (Bank B : AllocatableBanks)
    if (allowed(T, B))
      Out.push_back(B);
  return Out;
}
