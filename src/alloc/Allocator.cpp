//===- Allocator.cpp - ILP-based register/bank allocator -------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/Allocator.h"

#include "alloc/Baseline.h"
#include "alloc/Verifier.h"
#include "ixp/Frequency.h"
#include "support/StringUtils.h"
#include "support/Timer.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

//===----------------------------------------------------------------------===//
// Register assignment within banks
//===----------------------------------------------------------------------===//

/// Assigns register numbers to every bank residency the ILP decided.
/// The unit of assignment is a *stay*: a maximal region of segments over
/// which a value remains in one bank (segments joined by identity moves,
/// and clone starts joined to their original — co-located clones share a
/// register, paper Section 10). Color-critical temps carry their ILP
/// transfer-bank colors as precolors; entry parameters are precolored to
/// A0..A(n-1); everything else is colored greedily with an
/// optimistic-coalescing preference for Move endpoints (Section 9's
/// Park-Moon flavour). The ILP's K/capacity constraints keep the greedy
/// feasible in practice.
class RegColoring {
public:
  RegColoring(const MachineProgram &M, const PointMap &Points,
              const AllocModel &Model, const BankAnalysis &Banks,
              const std::vector<double> &X)
      : M(M), Points(Points), Model(Model), Banks(Banks), X(X) {}

  bool run(std::string &Error) {
    // Optimistic coalescing with undo: identity-move joins are coalesced
    // first; if coloring gets stuck, the failing stay is split back at
    // its joins and an extra register-register copy is emitted there
    // (the paper keeps an A register free for exactly this, Section 6).
    for (unsigned Attempt = 0; Attempt != 64; ++Attempt) {
      reset();
      collectSlots();
      uniteIdentityMoves();
      uniteCloneStarts();
      applyPrecolors();
      buildAffinities();
      Temp FailedTemp = ~0u;
      if (color(Error, FailedTemp))
        return true;
      if (FailedTemp == ~0u)
        return false; // precolor conflict: nothing to split
      // Split every identity join of the failing temp and retry.
      bool AnySplit = false;
      for (auto &[Key, IsSplit] : SplitCandidates)
        if (Key.second == FailedTemp && !IsSplit) {
          IsSplit = true;
          AnySplit = true;
        }
      if (!AnySplit)
        return false; // already fully split: genuine failure
    }
    return false;
  }

  /// Identity moves turned into real copies by coalescing undo; the
  /// extractor emits a same-bank Move there.
  const std::map<std::pair<PointId, Temp>, bool> &splits() const {
    return SplitCandidates;
  }

  bool isSplit(PointId P, Temp V) const {
    auto It = SplitCandidates.find({P, V});
    return It != SplitCandidates.end() && It->second;
  }

  /// Register of temp \p V resident in \p B at point \p P (side: false =
  /// before the point's moves, true = after).
  uint16_t regOf(Temp V, Bank B, PointId P, bool AfterSide) const {
    uint32_t C = Model.segmentOf(P, V, AfterSide);
    auto It = VertexOfClass.find(C);
    assert(It != VertexOfClass.end() && "no stay for this residency");
    auto RegIt = Reg.find(findRoot(It->second));
    assert(RegIt != Reg.end() && "stay was not colored");
    (void)B;
    return RegIt->second;
  }

private:
  struct Vertex {
    Bank B = Bank::A;
    Temp AnyTemp = 0;
    Temp CloneRep = 0;
    std::set<uint32_t> Residency; ///< (point << 1) | side
    uint32_t First = ~0u;
    int Precolor = -1;
  };

  uint32_t vertexOf(uint32_t Class, Temp V, Bank B) {
    auto It = VertexOfClass.find(Class);
    if (It != VertexOfClass.end())
      return It->second;
    uint32_t Id = static_cast<uint32_t>(Vertices.size());
    VertexOfClass.emplace(Class, Id);
    Parent.push_back(Id);
    Vertex Vx;
    Vx.B = B;
    Vx.AnyTemp = V;
    Vx.CloneRep = Banks.cloneRep(V);
    Vertices.push_back(std::move(Vx));
    return Id;
  }

  uint32_t findRoot(uint32_t Id) const {
    while (Parent[Id] != Id)
      Id = Parent[Id] = Parent[Parent[Id]];
    return Id;
  }

  void unite(uint32_t A, uint32_t B) {
    A = findRoot(A);
    B = findRoot(B);
    if (A == B)
      return;
    Parent[B] = A;
    Vertices[A].Residency.insert(Vertices[B].Residency.begin(),
                                 Vertices[B].Residency.end());
    Vertices[A].First = std::min(Vertices[A].First, Vertices[B].First);
    if (Vertices[A].Precolor < 0)
      Vertices[A].Precolor = Vertices[B].Precolor;
  }

  void collectSlots() {
    for (PointId P = 0; P != Points.numPoints(); ++P)
      for (Temp V : Points.existsAt(P))
        for (unsigned Side = 0; Side != 2; ++Side) {
          Bank B = Model.bankAt(X, P, V, Side != 0);
          if (B == Bank::M || B == Bank::C)
            continue;
          uint32_t C = Model.segmentOf(P, V, Side != 0);
          uint32_t Id = vertexOf(C, V, B);
          uint32_t Root = findRoot(Id);
          Vertices[Root].Residency.insert((P << 1) | Side);
          Vertices[Root].First =
              std::min(Vertices[Root].First, (P << 1) | Side);
        }
  }

  void reset() {
    VertexOfClass.clear();
    Parent.clear();
    Vertices.clear();
    Reg.clear();
    Affinities.clear();
  }

  void uniteIdentityMoves() {
    // A move opportunity where the bank does not change keeps the value
    // in place: the surrounding segments form one stay — unless a prior
    // coloring failure marked this join as split.
    for (PointId P = 0; P != Points.numPoints(); ++P)
      for (Temp V : Points.existsAt(P)) {
        if (!Model.isMovePoint(P, V))
          continue;
        auto Pair = Model.chosenMovePair(X, P, V);
        if (!Pair || Pair->first != Pair->second)
          continue;
        if (Pair->first == Bank::M || Pair->first == Bank::C)
          continue;
        auto It = SplitCandidates.find({P, V});
        if (It == SplitCandidates.end())
          It = SplitCandidates.emplace(std::make_pair(P, V), false).first;
        if (It->second)
          continue; // split: the two sides stay separate stays
        unite(vertexOf(Model.segmentOf(P, V, false), V, Pair->first),
              vertexOf(Model.segmentOf(P, V, true), V, Pair->first));
      }
  }

  void uniteCloneStarts() {
    // A clone starts in the same register as its original, in any bank
    // (paper Section 10: co-located clones occupy one register).
    for (const Block &Blk : M.Blocks)
      for (unsigned I = 0; I != Blk.Instrs.size(); ++I) {
        const MachineInstr &MI = Blk.Instrs[I];
        if (MI.Op != MOp::Clone || MI.Srcs[0].IsConst)
          continue;
        PointId P1 = Points.pointAt(Blk.Id, I);
        Temp S = MI.Srcs[0].T;
        Bank SB = Model.bankAt(X, P1, S, /*AfterSide=*/true);
        if (SB == Bank::M || SB == Bank::C)
          continue;
        for (Temp D : MI.Dsts) {
          Bank DB = Model.bankAt(X, P1 + 1, D, /*AfterSide=*/false);
          if (DB != SB)
            continue; // the model forbids this; stay safe anyway
          unite(vertexOf(Model.segmentOf(P1, S, true), S, SB),
                vertexOf(Model.segmentOf(P1 + 1, D, false), D, DB));
        }
      }
  }

  void applyPrecolors() {
    // ILP transfer-bank colors are point-independent per temp: every stay
    // of the temp in that bank takes the same register.
    for (auto &[Class, Id] : VertexOfClass) {
      Vertex &Root = Vertices[findRoot(Id)];
      if (!isTransferBank(Root.B))
        continue;
      Temp V = Vertices[Id].AnyTemp;
      if (auto C = Model.colorOf(X, V, Root.B))
        Root.Precolor = static_cast<int>(*C);
    }
    // ABI: entry parameters arrive in A0..A(n-1).
    if (M.Entry != NoBlock) {
      PointId P0 = Points.entryPoint(M.Entry);
      for (unsigned I = 0; I != M.EntryParams.size(); ++I) {
        Temp Param = M.EntryParams[I];
        if (!Points.exists(P0, Param))
          continue;
        uint32_t C = Model.segmentOf(P0, Param, /*AfterSide=*/false);
        auto It = VertexOfClass.find(C);
        if (It != VertexOfClass.end())
          Vertices[findRoot(It->second)].Precolor = static_cast<int>(I);
      }
    }
  }

  void buildAffinities() {
    // Move instructions whose endpoints land in the same GP bank want
    // the same register (the move then coalesces into a no-op).
    for (const Block &Blk : M.Blocks)
      for (unsigned I = 0; I != Blk.Instrs.size(); ++I) {
        const MachineInstr &MI = Blk.Instrs[I];
        if (MI.Op != MOp::Move || MI.Srcs[0].IsConst)
          continue;
        PointId P1 = Points.pointAt(Blk.Id, I);
        Bank SB = Model.bankAt(X, P1, MI.Srcs[0].T, /*AfterSide=*/true);
        Bank DB = Model.bankAt(X, P1 + 1, MI.Dsts[0], /*AfterSide=*/false);
        if (SB == DB && (SB == Bank::A || SB == Bank::B))
          Affinities.emplace_back(
              findRoot(vertexOf(Model.segmentOf(P1, MI.Srcs[0].T, true),
                                MI.Srcs[0].T, SB)),
              findRoot(vertexOf(Model.segmentOf(P1 + 1, MI.Dsts[0], false),
                                MI.Dsts[0], DB)));
      }
  }

  static bool overlaps(const std::set<uint32_t> &A,
                       const std::set<uint32_t> &B) {
    const std::set<uint32_t> &Small = A.size() < B.size() ? A : B;
    const std::set<uint32_t> &Big = &Small == &A ? B : A;
    for (uint32_t S : Small)
      if (Big.count(S))
        return true;
    return false;
  }

  bool conflicts(const Vertex &V1, const Vertex &V2) const {
    if (V1.B != V2.B)
      return false;
    // Clone-set members hold the same value; sharing is always legal.
    if (V1.CloneRep == V2.CloneRep)
      return false;
    return overlaps(V1.Residency, V2.Residency);
  }

  bool color(std::string &Error, Temp &FailedTemp) {
    std::vector<uint32_t> Roots;
    for (uint32_t Id = 0; Id != Vertices.size(); ++Id)
      if (findRoot(Id) == Id)
        Roots.push_back(Id);

    // A has 16 physical registers; the ILP's K row admits only 15
    // simultaneous residents, so the 16th register is the slack the
    // paper reserves for optimistic-coalescing repair and copy cycles
    // (Section 6). The parallel-copy sequencer picks whatever register
    // is free at its point.
    auto Capacity = [&](Bank B) -> unsigned {
      return B == Bank::B || B == Bank::A ? 16 : 8;
    };
    auto TryAssign = [&](uint32_t Id) -> bool {
      Vertex &Vx = Vertices[Id];
      std::set<uint16_t> Used;
      for (uint32_t Other : Roots) {
        if (Other == Id)
          continue;
        auto It = Reg.find(Other);
        if (It != Reg.end() && conflicts(Vx, Vertices[Other]))
          Used.insert(It->second);
      }
      if (Vx.Precolor >= 0) {
        if (Used.count(static_cast<uint16_t>(Vx.Precolor))) {
          Error = formatf("register assignment: precolored %s%d of %s "
                          "conflicts",
                          bankName(Vx.B), Vx.Precolor,
                          M.tempName(Vx.AnyTemp).c_str());
          return false;
        }
        Reg[Id] = static_cast<uint16_t>(Vx.Precolor);
        return true;
      }
      // Affinity preference (optimistic coalescing of Move endpoints).
      for (auto &[R1, R2] : Affinities) {
        uint32_t Other = findRoot(R1) == Id   ? findRoot(R2)
                         : findRoot(R2) == Id ? findRoot(R1)
                                              : ~0u;
        if (Other == ~0u || Vertices[Other].B != Vx.B)
          continue;
        auto It = Reg.find(Other);
        if (It != Reg.end() && !Used.count(It->second)) {
          Reg[Id] = It->second;
          return true;
        }
      }
      for (uint16_t R = 0; R != Capacity(Vx.B); ++R)
        if (!Used.count(R)) {
          Reg[Id] = R;
          return true;
        }
      Error = formatf("register assignment ran out of %s registers "
                      "(temp %s)",
                      bankName(Vx.B), M.tempName(Vx.AnyTemp).c_str());
      LastFailedTemp = Vx.AnyTemp;
      return false;
    };

    // Precolored vertices are pinned first.
    LastFailedTemp = ~0u;
    std::vector<uint32_t> Work;
    for (uint32_t Id : Roots) {
      if (Vertices[Id].Precolor >= 0) {
        if (!TryAssign(Id)) {
          FailedTemp = ~0u; // precolor conflicts are not splittable here
          return false;
        }
      } else {
        Work.push_back(Id);
      }
    }

    // Chaitin-Briggs simplify: peel vertices whose degree among the
    // still-unpeeled is below the bank capacity; when none qualifies,
    // peel the max-degree vertex optimistically. Select in reverse.
    std::vector<bool> Peeled(Vertices.size(), false);
    auto Degree = [&](uint32_t Id) {
      unsigned D = 0;
      for (uint32_t Other : Work)
        if (Other != Id && !Peeled[Other] &&
            conflicts(Vertices[Id], Vertices[Other]))
          ++D;
      return D;
    };
    std::vector<uint32_t> Stack;
    unsigned Remaining = Work.size();
    while (Remaining) {
      int Pick = -1;
      unsigned PickDeg = ~0u;
      for (uint32_t Id : Work) {
        if (Peeled[Id])
          continue;
        unsigned D = Degree(Id);
        if (D < Capacity(Vertices[Id].B) && D < PickDeg) {
          Pick = static_cast<int>(Id);
          PickDeg = D;
        }
      }
      if (Pick < 0) {
        // Optimistic: peel the highest-degree vertex and hope a color
        // remains at select time (Park-Moon style optimism).
        unsigned Best = 0;
        for (uint32_t Id : Work) {
          if (Peeled[Id])
            continue;
          unsigned D = Degree(Id);
          if (Pick < 0 || D > Best) {
            Pick = static_cast<int>(Id);
            Best = D;
          }
        }
      }
      Peeled[Pick] = true;
      Stack.push_back(static_cast<uint32_t>(Pick));
      --Remaining;
    }
    for (auto It = Stack.rbegin(); It != Stack.rend(); ++It)
      if (!TryAssign(*It)) {
        FailedTemp = LastFailedTemp;
        return false;
      }
    return true;
  }

  Temp LastFailedTemp = ~0u;
  std::map<std::pair<PointId, Temp>, bool> SplitCandidates;

  const MachineProgram &M;
  const PointMap &Points;
  const AllocModel &Model;
  const BankAnalysis &Banks;
  const std::vector<double> &X;

  std::map<uint32_t, uint32_t> VertexOfClass;
  mutable std::vector<uint32_t> Parent;
  std::vector<Vertex> Vertices;
  std::map<uint32_t, uint16_t> Reg;
  std::vector<std::pair<uint32_t, uint32_t>> Affinities;
};

//===----------------------------------------------------------------------===//
// Solution extraction
//===----------------------------------------------------------------------===//

class Extractor {
public:
  Extractor(const MachineProgram &M, const PointMap &Points,
            const AllocModel &Model, const BankAnalysis &Banks,
            const std::vector<double> &X, AllocOptions Opts)
      : M(M), Points(Points), Model(Model), Banks(Banks), X(X),
        Opts(std::move(Opts)), Regs(M, Points, Model, Banks, X) {}

  bool run(AllocatedProgram &Out, std::string &Error);

private:
  const MachineProgram &M;
  const PointMap &Points;
  const AllocModel &Model;
  const BankAnalysis &Banks;
  const std::vector<double> &X;
  AllocOptions Opts;
  RegColoring Regs;
  std::map<Temp, unsigned> SpillSlot; ///< per clone representative
  unsigned NumSpillSlots = 0;

  unsigned spillSlotOf(Temp V) {
    Temp Rep = Banks.cloneRep(V);
    auto It = SpillSlot.find(Rep);
    if (It != SpillSlot.end())
      return It->second;
    SpillSlot[Rep] = NumSpillSlots;
    return NumSpillSlots++;
  }

  uint16_t regOf(Temp V, Bank B, PointId P, bool AfterSide) {
    switch (B) {
    case Bank::A:
    case Bank::B:
    case Bank::L:
    case Bank::S:
    case Bank::LD:
    case Bank::SD:
      return Regs.regOf(V, B, P, AfterSide);
    case Bank::M:
      return static_cast<uint16_t>(spillSlotOf(V));
    case Bank::C:
      return 0;
    }
    return 0;
  }

  PhysLoc locOf(Temp V, Bank B, PointId P, bool AfterSide) {
    return {B, regOf(V, B, P, AfterSide)};
  }

  /// Occupied registers of \p B at point \p P (both sides), for transient
  /// register selection.
  std::set<uint16_t> occupiedRegs(PointId P, Bank B) {
    std::set<uint16_t> Occ;
    for (Temp V : Points.existsAt(P))
      for (unsigned Side = 0; Side != 2; ++Side) {
        if (!Banks.allowed(V, B))
          continue;
        if (Model.bankAt(X, P, V, Side != 0) == B)
          Occ.insert(regOf(V, B, P, Side != 0));
      }
    return Occ;
  }

  struct MoveUnit {
    Temp V;
    Bank From, To;
    PhysLoc Src, Dst;
    std::vector<AllocInstr> Code;
    std::vector<PhysLoc> Writes;
  };

  bool materializeUnit(PointId P, MoveUnit &U, std::string &Error);
  bool emitPointMoves(PointId P, AllocBlock &Out, std::string &Error);
  bool emitInstr(const MachineInstr &MI, PointId P1, AllocBlock &Out,
                 std::string &Error);
};

bool Extractor::materializeUnit(PointId P, MoveUnit &U, std::string &Error) {
  auto Path = interBankMovePath(U.From, U.To, Opts.Model.AllowSpills ||
                                                  U.From == Bank::M ||
                                                  U.To == Bank::M);
  if (!Path || Path->size() < 2) {
    Error = formatf("no data path %s -> %s", bankName(U.From),
                    bankName(U.To));
    return false;
  }
  U.Src = locOf(U.V, U.From, P, /*AfterSide=*/false);
  U.Dst = locOf(U.V, U.To, P, /*AfterSide=*/true);

  PhysLoc Cur = U.Src;
  for (unsigned K = 1; K != Path->size(); ++K) {
    Bank Next = (*Path)[K];
    bool Final = K + 1 == Path->size();
    PhysLoc Dst;
    if (Final) {
      Dst = U.Dst;
    } else {
      // Transient register in Next: any register free at P.
      std::set<uint16_t> Occ = occupiedRegs(P, Next);
      unsigned Cap = bankCapacity(Next) == ~0u ? 1 : bankCapacity(Next);
      int Free = -1;
      for (uint16_t R = 0; R != Cap; ++R)
        if (!Occ.count(R)) {
          Free = R;
          break;
        }
      if (Next == Bank::M)
        Free = static_cast<int>(spillSlotOf(U.V));
      if (Free < 0) {
        Error = formatf("no free transient register in %s at p%u",
                        bankName(Next), P);
        return false;
      }
      Dst = {Next, static_cast<uint16_t>(Free)};
    }

    AllocInstr I;
    I.Inserted = true;
    if (Next == Bank::M) {
      // Spill store: scratch[SpillBase + slot] <- Cur (an S/SD register).
      I.Op = MOp::MemWrite;
      I.Space = MemSpace::Scratch;
      I.Srcs = {AOperand::constant(Opts.SpillBase + Dst.Reg),
                AOperand::reg(Cur)};
    } else if (Cur.B == Bank::M) {
      // Reload: L/LD register <- scratch[SpillBase + slot].
      I.Op = MOp::MemRead;
      I.Space = MemSpace::Scratch;
      I.Srcs = {AOperand::constant(Opts.SpillBase + Cur.Reg)};
      I.Dsts = {Dst};
    } else {
      I.Op = MOp::Move;
      I.Srcs = {AOperand::reg(Cur)};
      I.Dsts = {Dst};
    }
    if (!I.Dsts.empty())
      U.Writes.push_back(I.Dsts[0]);
    U.Code.push_back(std::move(I));
    Cur = Dst;
  }
  return true;
}

bool Extractor::emitPointMoves(PointId P, AllocBlock &Out,
                               std::string &Error) {
  // Collect distinct moves. Clone-set members travelling between the
  // same physical registers share one instruction; clones headed to
  // *different* registers (e.g. distinct store-aggregate positions) each
  // need their own move, even though the paper's objective counts the
  // bank-level collection once (Section 10).
  std::set<std::tuple<Temp, Bank, uint16_t, Bank, uint16_t>> Seen;
  std::vector<MoveUnit> Units;
  // Coalescing-undo splits: an identity move whose two sides were given
  // different registers becomes a real same-bank copy.
  for (Temp V : Points.existsAt(P)) {
    if (!Regs.isSplit(P, V))
      continue;
    auto Pair = Model.chosenMovePair(X, P, V);
    if (!Pair || Pair->first != Pair->second)
      continue;
    PhysLoc Src = locOf(V, Pair->first, P, /*AfterSide=*/false);
    PhysLoc Dst = locOf(V, Pair->second, P, /*AfterSide=*/true);
    if (Src == Dst)
      continue;
    if (!Seen.insert({Banks.cloneRep(V), Src.B, Src.Reg, Dst.B, Dst.Reg})
             .second)
      continue;
    MoveUnit U;
    U.V = V;
    U.From = Pair->first;
    U.To = Pair->second;
    U.Src = Src;
    U.Dst = Dst;
    AllocInstr I;
    I.Inserted = true;
    I.Op = MOp::Move;
    I.Srcs = {AOperand::reg(Src)};
    I.Dsts = {Dst};
    U.Writes.push_back(Dst);
    U.Code.push_back(std::move(I));
    Units.push_back(std::move(U));
  }
  for (Temp V : Points.existsAt(P)) {
    auto Mv = Model.moveAt(X, P, V);
    if (!Mv)
      continue;
    Temp Rep = Banks.cloneRep(V);
    PhysLoc Src = locOf(V, Mv->first, P, /*AfterSide=*/false);
    PhysLoc Dst = locOf(V, Mv->second, P, /*AfterSide=*/true);
    if (!Seen.insert({Rep, Src.B, Src.Reg, Dst.B, Dst.Reg}).second)
      continue;
    MoveUnit U;
    U.V = V;
    U.From = Mv->first;
    U.To = Mv->second;
    if (!materializeUnit(P, U, Error))
      return false;
    Units.push_back(std::move(U));
  }
  if (Units.empty())
    return true;

  // Sequence units: U must run before W when W overwrites U's source.
  std::vector<bool> Done(Units.size(), false);
  unsigned Remaining = Units.size();
  while (Remaining) {
    bool Progress = false;
    for (unsigned I = 0; I != Units.size(); ++I) {
      if (Done[I])
        continue;
      bool Blocked = false;
      for (unsigned J = 0; J != Units.size(); ++J) {
        if (I == J || Done[J])
          continue;
        for (const PhysLoc &W : Units[I].Writes)
          if (W == Units[J].Src)
            Blocked = true;
      }
      if (Blocked)
        continue;
      for (AllocInstr &Instr : Units[I].Code)
        Out.Instrs.push_back(std::move(Instr));
      Done[I] = true;
      --Remaining;
      Progress = true;
    }
    if (Progress)
      continue;
    // Cycle: save one readable source into an A register that is free
    // at this point (the ILP keeps at most 15 of A's 16 occupied).
    int Pick = -1;
    for (unsigned I = 0; I != Units.size() && Pick < 0; ++I)
      if (!Done[I] && isAluInputBank(Units[I].Src.B))
        Pick = static_cast<int>(I);
    if (Pick < 0) {
      Error = "unbreakable parallel-move cycle through write-only banks";
      return false;
    }
    std::set<uint16_t> BusyA = occupiedRegs(P, Bank::A);
    for (const MoveUnit &U : Units) {
      if (U.Src.B == Bank::A)
        BusyA.insert(U.Src.Reg);
      for (const PhysLoc &W : U.Writes)
        if (W.B == Bank::A)
          BusyA.insert(W.Reg);
    }
    int FreeA = -1;
    for (uint16_t R = 0; R != 16 && FreeA < 0; ++R)
      if (!BusyA.count(R))
        FreeA = R;
    if (FreeA < 0) {
      Error = "no free A register for a parallel-move cycle";
      return false;
    }
    PhysLoc Saved = {Bank::A, static_cast<uint16_t>(FreeA)};
    AllocInstr Save;
    Save.Inserted = true;
    Save.Op = MOp::Move;
    Save.Srcs = {AOperand::reg(Units[Pick].Src)};
    Save.Dsts = {Saved};
    Out.Instrs.push_back(std::move(Save));
    // The unit now reads from the saved copy.
    for (AllocInstr &Instr : Units[Pick].Code)
      for (AOperand &S : Instr.Srcs)
        if (!S.IsConst && S.Loc == Units[Pick].Src)
          S.Loc = Saved;
    Units[Pick].Src = Saved;
  }
  return true;
}

bool Extractor::emitInstr(const MachineInstr &MI, PointId P1,
                          AllocBlock &Out, std::string &Error) {
  PointId P2 = P1 + 1;
  AllocInstr I;
  I.Op = MI.Op;
  I.Alu = MI.Alu;
  I.Cmp = MI.Cmp;
  I.Space = MI.Space;
  I.Imm = MI.Imm;
  I.Target = MI.Target;
  I.TargetElse = MI.TargetElse;

  auto SrcOperand = [&](const MOperand &S) {
    if (S.IsConst)
      return AOperand::constant(S.Value);
    Bank B = Model.bankAt(X, P1, S.T, /*AfterSide=*/true);
    return AOperand::reg(locOf(S.T, B, P1, /*AfterSide=*/true));
  };
  auto DstLoc = [&](Temp D) {
    Bank B = Model.bankAt(X, P2, D, /*AfterSide=*/false);
    return locOf(D, B, P2, /*AfterSide=*/false);
  };

  switch (MI.Op) {
  case MOp::Clone:
    // Clones share the original's location: no code.
    return true;
  case MOp::Move: {
    AOperand S = SrcOperand(MI.Srcs[0]);
    PhysLoc D = DstLoc(MI.Dsts[0]);
    if (!S.IsConst && S.Loc == D)
      return true; // coalesced
    I.Srcs = {S};
    I.Dsts = {D};
    break;
  }
  default:
    for (const MOperand &S : MI.Srcs)
      I.Srcs.push_back(SrcOperand(S));
    for (Temp D : MI.Dsts)
      I.Dsts.push_back(DstLoc(D));
    break;
  }
  (void)Error;
  Out.Instrs.push_back(std::move(I));
  return true;
}

bool Extractor::run(AllocatedProgram &Out, std::string &Error) {
  if (!Regs.run(Error))
    return false;

  Out.Blocks.resize(M.Blocks.size());
  Out.Entry = M.Entry;
  Out.NumEntryArgs = M.EntryParams.size();
  Out.SpillBase = Opts.SpillBase;
  for (const Block &Blk : M.Blocks) {
    AllocBlock &OB = Out.Blocks[Blk.Id];
    for (unsigned Idx = 0; Idx != Blk.Instrs.size(); ++Idx) {
      PointId P = Points.pointAt(Blk.Id, Idx);
      if (!emitPointMoves(P, OB, Error))
        return false;
      if (!emitInstr(Blk.Instrs[Idx], P, OB, Error))
        return false;
    }
  }
  Out.NumSpillSlots = NumSpillSlots;
  return true;
}

} // namespace

//===----------------------------------------------------------------------===//
// Driver
//===----------------------------------------------------------------------===//

const char *alloc::onIlpFailureName(OnIlpFailure P) {
  switch (P) {
  case OnIlpFailure::Error:     return "error";
  case OnIlpFailure::Incumbent: return "incumbent";
  case OnIlpFailure::Baseline:  return "baseline";
  }
  return "unknown";
}

const char *alloc::rungName(AllocRung R) {
  switch (R) {
  case AllocRung::Optimal:    return "optimal";
  case AllocRung::Incumbent:  return "incumbent";
  case AllocRung::SpillRetry: return "spill-retry";
  case AllocRung::Baseline:   return "baseline";
  }
  return "unknown";
}

bool alloc::parseOnIlpFailure(const std::string &Text, OnIlpFailure &Out) {
  if (Text == "error")
    Out = OnIlpFailure::Error;
  else if (Text == "incumbent")
    Out = OnIlpFailure::Incumbent;
  else if (Text == "baseline")
    Out = OnIlpFailure::Baseline;
  else
    return false;
  return true;
}

namespace {

/// How one rung of the ladder ended; drives the descent decision.
enum class Attempt {
  Accepted,   ///< verified program produced
  Infeasible, ///< model has no integer point (the classic spill trigger)
  Budget,     ///< time/node budget exhausted (or incumbent rejected by policy)
  Structural  ///< model build, extraction, or verification failed
};

} // namespace

AllocationResult alloc::allocate(const MachineProgram &M,
                                 DiagnosticEngine &Diags,
                                 const AllocOptions &Opts) {
  AllocationResult Result;
  if (M.EntryParams.size() > 15) {
    Result.Error =
        Status::error(StatusCode::InvalidArgument, Phase::ModelBuild,
                      "entry takes more than 15 arguments (bank A capacity)");
    return Result;
  }

  Liveness LV(M);
  PointMap Points(M, LV);
  FrequencyInfo Freq(M);

  const bool MayDescend = Opts.FailurePolicy != OnIlpFailure::Error;
  const bool MayBaseline = Opts.FailurePolicy == OnIlpFailure::Baseline;

  // Watchdog deadlines: carve the caller's --time-limit so a hung rung
  // cannot starve the fallbacks below it. The spill-free fast path gets
  // 60% of the wall clock; the spill-aware retry gets what is left (with
  // a floor so it is never started with a zero budget). Baseline is
  // combinatorial-search-free and needs no carve-out.
  const double Total = Opts.Mip.TimeLimitSeconds;
  const bool Finite = std::isfinite(Total) && Total > 0.0;
  Deadline Overall = Finite ? Deadline::after(Total) : Deadline::never();

  unsigned Attempts = 0;
  unsigned Violations = 0;

  auto TryOnce = [&](bool WithSpills, double BudgetSeconds,
                     AllocationResult &R) -> Attempt {
    ++Attempts;
    ModelOptions MO = Opts.Model;
    MO.AllowSpills = WithSpills;
    BankAnalysis Banks(M, WithSpills);
    AllocModel Model(M, LV, Points, Freq, Banks, MO);
    if (!Model.build(Diags)) {
      R.Error = Status::error(StatusCode::ModelBuildFailed, Phase::ModelBuild,
                              "model construction failed (see diagnostics)");
      return Attempt::Structural;
    }
    R.Stats.Build = Model.stats();
    R.Stats.IlpSize = Model.model().stats();

    ilp::MipOptions MipOpts = Opts.Mip;
    if (Finite)
      MipOpts.TimeLimitSeconds = BudgetSeconds;
    ilp::MipSolver Solver(Model.model(), MipOpts);
    ilp::MipResult Mip = Solver.solve();
    R.Stats.Solve = Mip.Stats;
    R.Stats.UsedSpillModel = WithSpills;
    if (Mip.Status == ilp::MipStatus::Infeasible) {
      R.Error = Status::error(StatusCode::IlpInfeasible, Phase::Solve,
                              WithSpills ? "spill-aware ILP infeasible"
                                         : "spill-free ILP infeasible");
      return Attempt::Infeasible;
    }
    if (Mip.Status != ilp::MipStatus::Optimal &&
        Mip.Status != ilp::MipStatus::Feasible) {
      R.Error = Status::error(
                    StatusCode::IlpBudgetExceeded, Phase::Solve,
                    "ILP solve hit its time/node budget without a solution")
                    .addHint("raise --time-limit or --node-limit");
      return Attempt::Budget;
    }
    const bool Proved = Mip.Status == ilp::MipStatus::Optimal;
    if (!Proved && !MayDescend) {
      R.Error =
          Status::error(StatusCode::IlpNonOptimal, Phase::Solve,
                        "a feasible incumbent exists but optimality was not "
                        "proved within the budget")
              .addHint("raise --time-limit")
              .addHint("rerun with --on-ilp-failure=incumbent to accept the "
                       "incumbent");
      return Attempt::Budget;
    }
    R.Stats.Objective = Mip.Objective;
    R.Stats.Moves = Model.countMoves(Mip.X);
    R.Stats.Spills = Model.countSpills(Mip.X);

    Extractor Ext(M, Points, Model, Banks, Mip.X, [&] {
      AllocOptions O = Opts;
      O.Model = MO;
      return O;
    }());
    std::string Error;
    AllocatedProgram Prog;
    if (!Ext.run(Prog, Error)) {
      R.Error = Status::error(StatusCode::ExtractFailed, Phase::Extract,
                              "extraction failed: " + Error);
      return Attempt::Structural;
    }
    // Gate every rung on the legality verifier: nothing unverified may
    // escape the allocator, no matter how the ladder got here.
    std::vector<std::string> Found = verifyAllocated(Prog);
    if (!Found.empty()) {
      Violations += Found.size();
      R.Error = Status::error(StatusCode::VerifyFailed, Phase::Verify,
                              "verifier rejected the allocation: " + Found[0]);
      return Attempt::Structural;
    }
    R.Prog = std::move(Prog);
    R.Ok = true;
    R.Stats.ProvedOptimal = Proved;
    return Attempt::Accepted;
  };

  auto Finalize = [&](AllocationResult &R, AllocRung Rung) {
    R.Stats.Rung = Rung;
    R.Stats.LadderAttempts = Attempts;
    R.Stats.VerifierViolations = Violations;
  };

  // Rung 1: the paper's spill-free fast path.
  Attempt First = Attempt::Infeasible; // ForceSpillModel skips straight down
  if (!Opts.ForceSpillModel) {
    double FastBudget = Finite ? Total * 0.6 : 0.0;
    First = TryOnce(/*WithSpills=*/false, FastBudget, Result);
    if (First == Attempt::Accepted) {
      Finalize(Result, Result.Stats.ProvedOptimal ? AllocRung::Optimal
                                                  : AllocRung::Incumbent);
      return Result;
    }
    // Descend to the spill-aware model when the spill-free model is
    // infeasible (the paper's two-phase refinement) or, under a lenient
    // policy, as *recovery* from a budget/structural failure.
    if (First != Attempt::Infeasible && !MayDescend) {
      Finalize(Result, AllocRung::Optimal);
      return Result;
    }
  }

  // Rung 2: the spill-aware model, on the remaining wall clock.
  Status FastError = Result.Error;
  AllocationResult SpillResult;
  double SpillBudget =
      Finite ? std::max(Overall.remaining(), Total * 0.1) : 0.0;
  Attempt Second = TryOnce(/*WithSpills=*/true, SpillBudget, SpillResult);
  if (Second == Attempt::Accepted) {
    // Rescuing a budget/structural failure is a degradation (SpillRetry);
    // the classic infeasible -> spill path is the normal pipeline and
    // keeps its rung determined by proof quality alone.
    AllocRung Rung = First != Attempt::Infeasible ? AllocRung::SpillRetry
                     : SpillResult.Stats.ProvedOptimal ? AllocRung::Optimal
                                                       : AllocRung::Incumbent;
    Finalize(SpillResult, Rung);
    return SpillResult;
  }

  // Rung 3: the heuristic memory-home allocator, if the policy allows.
  if (!MayBaseline) {
    if (!FastError.ok())
      SpillResult.Error.addHint("spill-free attempt: " + FastError.render());
    SpillResult.Error.addHint(
        "rerun with --on-ilp-failure=baseline to fall back to the heuristic "
        "allocator");
    Finalize(SpillResult, AllocRung::Optimal);
    return SpillResult;
  }

  ++Attempts;
  AllocationResult Fallback;
  Fallback.Stats = SpillResult.Stats; // keep the failed solve's telemetry
  BaselineResult B = allocateBaseline(M, Opts.SpillBase);
  if (!B.Ok) {
    Fallback.Error =
        Status::error(StatusCode::BaselineFailed, Phase::Baseline,
                      "baseline allocation failed: " + B.Error.render())
            .addHint("ILP attempt: " + SpillResult.Error.render());
    Finalize(Fallback, AllocRung::Baseline);
    return Fallback;
  }
  std::vector<std::string> Found = verifyAllocated(B.Prog);
  if (!Found.empty()) {
    Violations += Found.size();
    Fallback.Error = Status::error(
        StatusCode::VerifyFailed, Phase::Verify,
        "verifier rejected the baseline allocation: " + Found[0]);
    Finalize(Fallback, AllocRung::Baseline);
    return Fallback;
  }
  Fallback.Prog = std::move(B.Prog);
  Fallback.Ok = true;
  Fallback.Stats.Objective = 0.0;
  Fallback.Stats.Moves = 0;
  Fallback.Stats.Spills = Fallback.Prog.NumSpillSlots;
  Fallback.Stats.UsedSpillModel = false;
  Fallback.Stats.ProvedOptimal = false;
  Finalize(Fallback, AllocRung::Baseline);
  return Fallback;
}
