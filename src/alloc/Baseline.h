//===- Baseline.h - Naive memory-home allocator ----------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The comparison baseline for the ILP allocator: every temporary lives
/// in a scratch-memory slot; each instruction loads its operands into
/// fixed staging registers and stores its results back. This is the
/// "no register allocation" strategy the paper's introduction argues is
/// nearly intolerable on the IXP ("because of the penalty for memory
/// accesses ... spilling is nearly intolerable"); the benchmark
/// bench_baseline_vs_ilp quantifies exactly that penalty.
///
/// The output is correct by construction and passes the same legality
/// verifier and simulator as the ILP allocator's output.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_BASELINE_H
#define ALLOC_BASELINE_H

#include "alloc/Allocated.h"
#include "support/Status.h"

namespace nova {
namespace alloc {

struct BaselineResult {
  bool Ok = false;
  Status Error;
  AllocatedProgram Prog;
};

/// Allocates \p M with the memory-home strategy. \p SpillBase is the
/// scratch word address of the first slot.
BaselineResult allocateBaseline(const ixp::MachineProgram &M,
                                uint32_t SpillBase = 0x8000);

} // namespace alloc
} // namespace nova

#endif // ALLOC_BASELINE_H
