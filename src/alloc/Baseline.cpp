//===- Baseline.cpp - Naive memory-home allocator ---------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/Baseline.h"

#include "support/StringUtils.h"

#include <map>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

namespace {

/// Fixed staging registers of the baseline.
constexpr PhysLoc StageA{Bank::A, 0};  ///< first ALU operand
constexpr PhysLoc StageB{Bank::B, 0};  ///< second ALU operand
constexpr PhysLoc StageA2{Bank::A, 1}; ///< extra operand / result carrier
constexpr PhysLoc StageS{Bank::S, 0};  ///< store staging

class Baseline {
public:
  Baseline(const MachineProgram &M, uint32_t SpillBase)
      : M(M), SpillBase(SpillBase) {}

  BaselineResult run() {
    BaselineResult R;
    R.Prog.Entry = M.Entry;
    R.Prog.NumEntryArgs = M.EntryParams.size();
    R.Prog.SpillBase = SpillBase;
    R.Prog.Blocks.resize(M.Blocks.size());
    if (M.EntryParams.size() > 15) {
      R.Error = Status::error(StatusCode::InvalidArgument, Phase::Baseline,
                              "too many entry parameters");
      return R;
    }
    for (const Block &Blk : M.Blocks) {
      Out = &R.Prog.Blocks[Blk.Id];
      if (Blk.Id == M.Entry) {
        // Prologue: arguments arrive in A0..A(n-1); home them.
        for (unsigned I = 0; I != M.EntryParams.size(); ++I)
          storeToSlot({Bank::A, static_cast<uint16_t>(I)},
                      M.EntryParams[I]);
      }
      for (const MachineInstr &MI : Blk.Instrs)
        lower(MI);
    }
    R.Prog.NumSpillSlots = NextSlot;
    R.Ok = true;
    return R;
  }

private:
  const MachineProgram &M;
  uint32_t SpillBase;
  AllocBlock *Out = nullptr;
  std::map<Temp, unsigned> Slot;
  unsigned NextSlot = 0;

  uint32_t slotAddr(Temp T) {
    auto It = Slot.find(T);
    if (It == Slot.end())
      It = Slot.emplace(T, NextSlot++).first;
    return SpillBase + It->second;
  }

  void emit(AllocInstr I) {
    I.Inserted = true;
    Out->Instrs.push_back(std::move(I));
  }

  void emitMove(PhysLoc Dst, PhysLoc Src) {
    AllocInstr I;
    I.Op = MOp::Move;
    I.Srcs = {AOperand::reg(Src)};
    I.Dsts = {Dst};
    emit(std::move(I));
  }

  /// Loads temp \p T from its slot into \p Dst (an A or B register),
  /// bouncing through the given L register.
  void loadFromSlot(Temp T, PhysLoc Dst, uint16_t LReg) {
    AllocInstr Rd;
    Rd.Op = MOp::MemRead;
    Rd.Space = MemSpace::Scratch;
    Rd.Srcs = {AOperand::constant(slotAddr(T))};
    Rd.Dsts = {{Bank::L, LReg}};
    emit(std::move(Rd));
    emitMove(Dst, {Bank::L, LReg});
  }

  /// Stores the value in \p Src (ALU-readable) to \p T's slot through S0.
  void storeToSlot(PhysLoc Src, Temp T) {
    if (!(Src == StageS))
      emitMove(StageS, Src);
    AllocInstr Wr;
    Wr.Op = MOp::MemWrite;
    Wr.Space = MemSpace::Scratch;
    Wr.Srcs = {AOperand::constant(slotAddr(T)), AOperand::reg(StageS)};
    emit(std::move(Wr));
  }

  /// Materializes operand \p O into \p Dst (A/B staging).
  AOperand operand(const MOperand &O, PhysLoc Dst, uint16_t LReg) {
    if (O.IsConst) {
      AllocInstr I;
      I.Op = MOp::Imm;
      I.Imm = O.Value;
      I.Dsts = {Dst};
      emit(std::move(I));
      return AOperand::reg(Dst);
    }
    loadFromSlot(O.T, Dst, LReg);
    return AOperand::reg(Dst);
  }

  void lower(const MachineInstr &MI) {
    switch (MI.Op) {
    case MOp::Alu: {
      AllocInstr I;
      I.Op = MOp::Alu;
      I.Alu = MI.Alu;
      I.Srcs.push_back(operand(MI.Srcs[0], StageA, 0));
      if (MI.Srcs.size() > 1) {
        if (MI.Srcs[1].IsConst)
          I.Srcs.push_back(AOperand::constant(MI.Srcs[1].Value));
        else
          I.Srcs.push_back(operand(MI.Srcs[1], StageB, 1));
      }
      I.Dsts = {StageA2};
      I.Inserted = false;
      Out->Instrs.push_back(I);
      storeToSlot(StageA2, MI.Dsts[0]);
      return;
    }
    case MOp::Imm: {
      AllocInstr I;
      I.Op = MOp::Imm;
      I.Imm = MI.Imm;
      I.Dsts = {StageA2};
      Out->Instrs.push_back(I);
      storeToSlot(StageA2, MI.Dsts[0]);
      return;
    }
    case MOp::Move: {
      AOperand S = operand(MI.Srcs[0], StageA2, 0);
      storeToSlot(S.Loc, MI.Dsts[0]);
      return;
    }
    case MOp::MemRead: {
      AllocInstr I;
      I.Op = MOp::MemRead;
      I.Space = MI.Space;
      I.Srcs = {operand(MI.Srcs[0], StageA, 0)};
      Bank DB = MI.Space == MemSpace::Sdram ? Bank::LD : Bank::L;
      for (unsigned K = 0; K != MI.Dsts.size(); ++K)
        I.Dsts.push_back({DB, static_cast<uint16_t>(K)});
      I.Inserted = false;
      Out->Instrs.push_back(I);
      for (unsigned K = 0; K != MI.Dsts.size(); ++K) {
        emitMove(StageA2, {DB, static_cast<uint16_t>(K)});
        storeToSlot(StageA2, MI.Dsts[K]);
      }
      return;
    }
    case MOp::MemWrite: {
      Bank SB = MI.Space == MemSpace::Sdram ? Bank::SD : Bank::S;
      // Stage every value into consecutive S/SD registers.
      for (unsigned K = 1; K != MI.Srcs.size(); ++K) {
        AOperand V = operand(MI.Srcs[K], StageA2, 0);
        emitMove({SB, static_cast<uint16_t>(K - 1)}, V.Loc);
      }
      AllocInstr I;
      I.Op = MOp::MemWrite;
      I.Space = MI.Space;
      I.Srcs = {operand(MI.Srcs[0], StageA, 0)};
      for (unsigned K = 1; K != MI.Srcs.size(); ++K)
        I.Srcs.push_back(AOperand::reg({SB, static_cast<uint16_t>(K - 1)}));
      I.Inserted = false;
      Out->Instrs.push_back(I);
      return;
    }
    case MOp::Hash: {
      AOperand V = operand(MI.Srcs[0], StageA2, 0);
      emitMove(StageS, V.Loc);
      AllocInstr I;
      I.Op = MOp::Hash;
      I.Srcs = {AOperand::reg(StageS)};
      I.Dsts = {{Bank::L, 0}}; // SameReg with S0
      I.Inserted = false;
      Out->Instrs.push_back(I);
      emitMove(StageA2, {Bank::L, 0});
      storeToSlot(StageA2, MI.Dsts[0]);
      return;
    }
    case MOp::BitTestSet: {
      AOperand Bits = operand(MI.Srcs[1], StageA2, 1);
      emitMove(StageS, Bits.Loc);
      AllocInstr I;
      I.Op = MOp::BitTestSet;
      I.Space = MI.Space;
      I.Srcs = {operand(MI.Srcs[0], StageA, 0), AOperand::reg(StageS)};
      I.Dsts = {{Bank::L, 0}};
      I.Inserted = false;
      Out->Instrs.push_back(I);
      emitMove(StageA2, {Bank::L, 0});
      storeToSlot(StageA2, MI.Dsts[0]);
      return;
    }
    case MOp::Clone: {
      AOperand V = operand(MI.Srcs[0], StageA2, 0);
      for (Temp D : MI.Dsts)
        storeToSlot(V.Loc, D);
      return;
    }
    case MOp::Branch: {
      AllocInstr I;
      I.Op = MOp::Branch;
      I.Cmp = MI.Cmp;
      I.Target = MI.Target;
      I.TargetElse = MI.TargetElse;
      I.Srcs = {operand(MI.Srcs[0], StageA, 0),
                operand(MI.Srcs[1], StageB, 1)};
      I.Inserted = false;
      Out->Instrs.push_back(I);
      return;
    }
    case MOp::Jump: {
      AllocInstr I;
      I.Op = MOp::Jump;
      I.Target = MI.Target;
      I.Inserted = false;
      Out->Instrs.push_back(I);
      return;
    }
    case MOp::Halt: {
      AllocInstr I;
      I.Op = MOp::Halt;
      unsigned NextA = 2; // A2.. hold the results
      for (const MOperand &S : MI.Srcs) {
        if (S.IsConst) {
          I.Srcs.push_back(AOperand::constant(S.Value));
        } else {
          PhysLoc Dst = {Bank::A, static_cast<uint16_t>(NextA++)};
          loadFromSlot(S.T, Dst, 0);
          I.Srcs.push_back(AOperand::reg(Dst));
        }
      }
      I.Inserted = false;
      Out->Instrs.push_back(I);
      return;
    }
    }
  }
};

} // namespace

BaselineResult alloc::allocateBaseline(const MachineProgram &M,
                                       uint32_t SpillBase) {
  return Baseline(M, SpillBase).run();
}
