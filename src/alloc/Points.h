//===- Points.h - Program points of the ILP model ---------------*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Enumerates the program points of a machine flowgraph in the paper's
/// sense (Section 5.2): every instruction lies between two points; the
/// point after a block's terminator is connected to the entry points of
/// the successor blocks. Also materializes the Exists and Copy sets.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_POINTS_H
#define ALLOC_POINTS_H

#include "ixp/Liveness.h"
#include "ixp/MachineIr.h"

#include <set>
#include <vector>

namespace nova {
namespace alloc {

using PointId = uint32_t;
using ixp::BlockId;
using ixp::Temp;

/// Point-indexed view of a machine program.
class PointMap {
public:
  PointMap(const ixp::MachineProgram &M, const ixp::Liveness &LV);

  unsigned numPoints() const { return NumPoints; }

  /// Point before instruction \p Idx of block \p B (Idx == #instrs gives
  /// the block's exit point).
  PointId pointAt(BlockId B, unsigned Idx) const {
    return FirstPoint[B] + Idx;
  }

  PointId entryPoint(BlockId B) const { return FirstPoint[B]; }
  PointId exitPoint(BlockId B) const {
    return FirstPoint[B] + NumInstrs[B];
  }

  BlockId blockOf(PointId P) const { return BlockOfPoint[P]; }

  /// Exists set of the paper: temporaries live at (or defined dead into)
  /// each point.
  const std::set<Temp> &existsAt(PointId P) const { return Exists[P]; }
  bool exists(PointId P, Temp T) const { return Exists[P].count(T) != 0; }

  /// Control-flow edges between points: (exit point of block, entry point
  /// of successor).
  const std::vector<std::pair<PointId, PointId>> &edges() const {
    return Edges;
  }

  /// Copy set: (p1, p2, v) with v carried unchanged from p1 to p2 — both
  /// across instructions that do not redefine v and along control edges.
  struct CopyEntry {
    PointId P1, P2;
    Temp V;
  };
  const std::vector<CopyEntry> &copies() const { return Copies; }

  /// Sum over points of |existsAt| (a size measure for diagnostics).
  unsigned totalExists() const {
    unsigned N = 0;
    for (const auto &S : Exists)
      N += S.size();
    return N;
  }

private:
  unsigned NumPoints = 0;
  std::vector<PointId> FirstPoint;  ///< per block
  std::vector<unsigned> NumInstrs;  ///< per block
  std::vector<BlockId> BlockOfPoint;
  std::vector<std::set<Temp>> Exists;
  std::vector<std::pair<PointId, PointId>> Edges;
  std::vector<CopyEntry> Copies;
};

} // namespace alloc
} // namespace nova

#endif // ALLOC_POINTS_H
