//===- Allocated.cpp ------------------------------------------------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "alloc/Allocated.h"

#include <sstream>

using namespace nova;
using namespace nova::alloc;
using namespace nova::ixp;

std::string PhysLoc::str() const {
  return std::string(bankName(B)) + std::to_string(Reg);
}

std::string AllocatedProgram::print() const {
  std::ostringstream OS;
  for (unsigned B = 0; B != Blocks.size(); ++B) {
    OS << (B == Entry ? "entry " : "") << "block b" << B << ":\n";
    for (const AllocInstr &I : Blocks[B].Instrs) {
      OS << (I.Inserted ? "  + " : "    ");
      if (!I.Dsts.empty()) {
        for (unsigned K = 0; K != I.Dsts.size(); ++K)
          OS << (K ? ", " : "") << I.Dsts[K].str();
        OS << " = ";
      }
      OS << mopName(I.Op);
      switch (I.Op) {
      case MOp::Alu:
        OS << '.' << cps::primOpName(I.Alu);
        break;
      case MOp::Imm:
        OS << ' ' << I.Imm;
        break;
      case MOp::MemRead:
      case MOp::MemWrite:
      case MOp::BitTestSet:
        OS << '.' << cps::memSpaceName(I.Space);
        break;
      case MOp::Branch:
        OS << '.' << cps::cmpOpName(I.Cmp);
        break;
      default:
        break;
      }
      for (const AOperand &S : I.Srcs) {
        OS << ' ';
        if (S.IsConst)
          OS << S.Value;
        else
          OS << S.Loc.str();
      }
      if (I.Op == MOp::Branch)
        OS << " -> b" << I.Target << " / b" << I.TargetElse;
      if (I.Op == MOp::Jump)
        OS << " -> b" << I.Target;
      OS << '\n';
    }
  }
  return OS.str();
}
