//===- Verifier.h - Static legality checks on allocated code ----*- C++ -*-===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Checks an allocated program against the IXP1200's data-path rules:
///  - ALU results in {A,B,S,SD}; operands in {A,B,L,LD} with at most one
///    operand from each of A, B, and L+LD;
///  - memory reads define consecutive ascending registers of the right
///    read-transfer bank; writes consume consecutive registers of the
///    right write-transfer bank;
///  - hash/bit-test-set results and operands share a register number in
///    L and S respectively;
///  - memory addresses come from general-purpose registers (immediates
///    allowed for allocator-inserted spill slots);
///  - register indices stay within bank capacities.
///
/// Value correctness is established separately by running the allocated
/// program against the functional simulation.
///
//===----------------------------------------------------------------------===//

#ifndef ALLOC_VERIFIER_H
#define ALLOC_VERIFIER_H

#include "alloc/Allocated.h"

#include <string>
#include <vector>

namespace nova {
namespace alloc {

/// Returns all violations found (empty means legal).
std::vector<std::string> verifyAllocated(const AllocatedProgram &P);

} // namespace alloc
} // namespace nova

#endif // ALLOC_VERIFIER_H
