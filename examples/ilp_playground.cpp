//===- ilp_playground.cpp - Using the ILP substrate directly --------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Demonstrates the AMPL-replacement modeling layer and the branch & bound
// solver on the paper's Figure 2 example and on a small knapsack.
//
//===----------------------------------------------------------------------===//

#include "ilp/MipSolver.h"

#include <cstdio>

using namespace nova::ilp;

int main() {
  // Figure 2 of the paper: variables x[t,r] over tasks T = {t1 t2} and
  // resources R = {r1 r2 r3}, with per-task assignment constraints.
  {
    Model M;
    const char *Tasks[] = {"t1", "t2"};
    double Cost[] = {3, 4};
    VarId X[2][3];
    for (int T = 0; T != 2; ++T) {
      LinExpr Row;
      for (int R = 0; R != 3; ++R) {
        X[T][R] = M.addBinary(std::string("x_") + Tasks[T] + "_r" +
                                  std::to_string(R + 1),
                              Cost[T] * (R + 1));
        Row += LinExpr(X[T][R]);
      }
      // Like the instantiated "x_{t,r1}+x_{t,r2}+x_{t,r3} = 1" rows the
      // paper shows (it displays the sums 3 and 4 before normalization).
      M.addConstraint(std::move(Row), Rel::EQ, 1.0,
                      std::string("assign_") + Tasks[T]);
    }
    // No two tasks on one resource.
    for (int R = 0; R != 3; ++R)
      M.addConstraint(LinExpr(X[0][R]) + LinExpr(X[1][R]), Rel::LE, 1.0);

    std::printf("=== Figure 2 style model ===\n%s\n",
                M.toLpString().c_str());
    MipResult Res = MipSolver(M).solve();
    std::printf("status optimal=%d objective=%.1f\n",
                Res.Status == MipStatus::Optimal, Res.Objective);
    for (int T = 0; T != 2; ++T)
      for (int R = 0; R != 3; ++R)
        if (Res.X[X[T][R].Index] > 0.5)
          std::printf("  %s -> r%d\n", Tasks[T], R + 1);
  }

  // A knapsack, to show the solver statistics of Figure 7's columns.
  {
    Model M;
    LinExpr Weight;
    for (int I = 0; I != 12; ++I) {
      VarId V = M.addBinary("item" + std::to_string(I),
                            -double(3 + (I * 7) % 11)); // maximize value
      Weight += double(2 + (I * 5) % 9) * LinExpr(V);
    }
    M.addConstraint(std::move(Weight), Rel::LE, 30.0, "capacity");
    MipResult Res = MipSolver(M).solve();
    std::printf("\n=== Knapsack ===\nvalue=%.0f nodes=%u rootLP=%.4fs "
                "total=%.4fs lp-iterations=%u\n",
                -Res.Objective, Res.Stats.Nodes, Res.Stats.RootLpSeconds,
                Res.Stats.TotalSeconds, Res.Stats.LpIterations);
  }
  return 0;
}
