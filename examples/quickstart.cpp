//===- quickstart.cpp - Compile and run a first Nova program --------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Compiles a small packet filter end to end — parse, type check, CPS,
// optimize, instruction selection, ILP register/bank allocation — then
// prints each stage and executes the allocated code on the micro-engine
// simulator.
//
//===----------------------------------------------------------------------===//

#include "alloc/Verifier.h"
#include "driver/Compiler.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace nova;

int main() {
  const char *Source = R"nova(
// A tiny fast path: read a header word, bump a TTL-style field with
// layout-driven extraction, write it back, and return the old value.
layout hdr = { ver : 4, ihl : 4, tos : 8, len : 16 };

fun main(pkt : word) {
  let (w0, w1) = sram(pkt);
  let h = unpack[hdr](w0);
  let sum = w0 + w1;
  let out = pack[hdr] [ ver = h.ver, ihl = h.ihl, tos = h.tos,
                        len = h.len + 1 ];
  sram(pkt + 8) <- (out.0, sum);
  h.len
}
)nova";

  auto R = driver::compileNova(Source, "quickstart.nova");
  if (!R->Ok) {
    std::fprintf(stderr, "compilation failed:\n%s\n", R->ErrorText.c_str());
    return 1;
  }

  std::printf("=== Optimized CPS ===\n%s\n", R->Cps.print().c_str());
  std::printf("=== Machine IR (virtual temps) ===\n%s\n",
              R->Machine.print().c_str());
  std::printf("=== Allocated code (+ marks allocator-inserted moves) ===\n%s\n",
              R->Alloc.Prog.print().c_str());

  std::printf("=== Allocation statistics ===\n");
  std::printf("inter-bank moves: %u, spills: %u, objective: %.2f\n",
              R->Alloc.Stats.Moves, R->Alloc.Stats.Spills,
              R->Alloc.Stats.Objective);
  std::printf("ILP: %u vars, %u constraints (a naive per-point model: %u "
              "vars)\n",
              R->Alloc.Stats.IlpSize.NumVariables,
              R->Alloc.Stats.IlpSize.NumConstraints,
              R->Alloc.Stats.Build.RawVariables);

  auto Violations = alloc::verifyAllocated(R->Alloc.Prog);
  std::printf("verifier: %s\n",
              Violations.empty() ? "all data-path rules satisfied"
                                 : Violations.front().c_str());

  // Execute: header word 0x45001234 (len field = 0x1234), payload word 7.
  sim::Memory Mem;
  Mem.Sram[100] = 0x45001234;
  Mem.Sram[101] = 7;
  sim::RunResult Run = sim::runAllocated(R->Alloc.Prog, {100}, Mem);
  if (!Run.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Error.render().c_str());
    return 1;
  }
  std::printf("\n=== Execution ===\n");
  std::printf("returned len = 0x%X (expected 0x1234)\n", Run.HaltValues[0]);
  std::printf("stored header = 0x%08X (len bumped to 0x1235)\n",
              Mem.Sram[108]);
  std::printf("stored sum    = 0x%08X\n", Mem.Sram[109]);
  std::printf("cycles: %llu, instructions: %llu\n",
              static_cast<unsigned long long>(Run.Cycles),
              static_cast<unsigned long long>(Run.Instructions));
  return 0;
}
