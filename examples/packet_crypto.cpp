//===- packet_crypto.cpp - AES fast path on the micro-engine --------------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Compiles the paper's AES Rijndael application, encrypts a packet on the
// simulated IXP1200, validates the ciphertext against the independent
// reference implementation, and reports the throughput model's Mbps.
//
//===----------------------------------------------------------------------===//

#include "apps/AppSources.h"
#include "driver/Compiler.h"
#include "ref/Aes.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace nova;

int main() {
  std::printf("compiling aes.nova (ILP allocation, this takes a bit)...\n");
  driver::CompileOptions Opts;
  Opts.Alloc.Mip.TimeLimitSeconds = 600.0;
  auto R = driver::compileNova(apps::aesNovaSource(), "aes.nova", Opts);
  if (!R->Ok) {
    std::fprintf(stderr, "compilation failed:\n%s\n", R->ErrorText.c_str());
    return 1;
  }
  std::printf("  %u machine instructions, %u inter-bank moves, %u spills\n",
              R->Machine.numInstructions(), R->Alloc.Stats.Moves,
              R->Alloc.Stats.Spills);

  // Build a packet: IPv4 header + 32-byte payload at SDRAM 0x100.
  sim::Memory Mem;
  apps::loadAesEnvironment(Mem);
  std::vector<uint32_t> Packet = {0x45000034, 0x00004000, 0x40060000,
                                  0x0A000001, 0x0A000002};
  std::vector<std::array<uint32_t, 4>> Blocks = {
      {0x00112233, 0x44556677, 0x8899AABB, 0xCCDDEEFF},
      {0xDEADBEEF, 0xCAFEBABE, 0x01234567, 0x89ABCDEF}};
  for (const auto &Blk : Blocks)
    for (uint32_t W : Blk)
      Packet.push_back(W);
  apps::storePacket(Mem.Sdram, 0x100, Packet);

  unsigned PayloadBytes = 32;
  sim::RunResult Run =
      sim::runAllocated(R->Alloc.Prog, {0x100, 0x400, PayloadBytes}, Mem);
  if (!Run.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Error.render().c_str());
    return 1;
  }

  // Check against the reference.
  ref::Aes128 Aes(apps::aesKey());
  bool AllMatch = true;
  for (unsigned B = 0; B != Blocks.size(); ++B) {
    auto Ct = Aes.encrypt(Blocks[B]);
    std::printf("block %u ciphertext:", B);
    for (unsigned I = 0; I != 4; ++I) {
      uint32_t Got = Mem.Sdram[0x400 + 4 * B + I];
      std::printf(" %08X", Got);
      AllMatch &= Got == Ct[I];
    }
    std::printf("\n");
  }
  std::printf("reference check: %s\n", AllMatch ? "MATCH" : "MISMATCH");

  std::printf("cycles/packet: %llu  ->  %.0f Mbps at 233 MHz (%u-byte "
              "payload)\n",
              static_cast<unsigned long long>(Run.Cycles),
              sim::throughputMbps(PayloadBytes, double(Run.Cycles)),
              PayloadBytes);
  return AllMatch ? 0 : 1;
}
