//===- nat_translation.cpp - IPv6 -> IPv4 NAT on the micro-engine ---------===//
//
// Part of the nova-ixp project: a reproduction of "Taming the IXP Network
// Processor" (PLDI 2003).
//
// Compiles the paper's NAT application, translates an IPv6 packet to
// IPv4, and prints the resulting header with its checksum verified.
//
//===----------------------------------------------------------------------===//

#include "apps/AppSources.h"
#include "driver/Compiler.h"
#include "ref/Checksum.h"
#include "sim/Simulator.h"

#include <cstdio>

using namespace nova;

int main() {
  std::printf("compiling nat.nova...\n");
  auto R = driver::compileNova(apps::natNovaSource(), "nat.nova");
  if (!R->Ok) {
    std::fprintf(stderr, "compilation failed:\n%s\n", R->ErrorText.c_str());
    return 1;
  }
  std::printf("  Figure-5 stats: %u Nova lines, %u instructions, %u "
              "layouts, %u pack, %u unpack, %u raise, %u handle\n",
              R->novaStats().NovaLines, R->Machine.numInstructions(),
              R->novaStats().LayoutSpecs, R->novaStats().PackCount,
              R->novaStats().UnpackCount, R->novaStats().RaiseCount,
              R->novaStats().HandleCount);

  // IPv6 packet: version 6, payload 24 bytes of UDP, hop limit 17.
  unsigned PayloadLen = 24;
  std::vector<uint32_t> Pkt(10, 0);
  Pkt[0] = (6u << 28) | (0x10u << 20) | 0xBEEF;
  Pkt[1] = (PayloadLen << 16) | (17u << 8) | 17u;
  Pkt[5] = 0xC0A80001; // v6 source, low word -> v4 source
  Pkt[9] = 0xC0A80002; // v6 destination, low word -> v4 destination
  for (unsigned I = 0; I != PayloadLen / 4; ++I)
    Pkt.push_back(0xAB000000 | I);

  sim::Memory Mem;
  apps::storePacket(Mem.Sdram, 0x100, Pkt);
  sim::RunResult Run = sim::runAllocated(R->Alloc.Prog, {0x100, 0x800}, Mem);
  if (!Run.Ok) {
    std::fprintf(stderr, "run failed: %s\n", Run.Error.render().c_str());
    return 1;
  }

  std::printf("returned total length: %u (payload %u + 20 header)\n",
              Run.HaltValues[0], PayloadLen);
  std::printf("IPv4 header:");
  std::vector<uint32_t> Hdr;
  for (unsigned I = 0; I != 5; ++I) {
    Hdr.push_back(Mem.Sdram[0x800 + I]);
    std::printf(" %08X", Hdr.back());
  }
  std::printf("\nchecksum folds to 0x%04X (0xFFFF means valid)\n",
              ref::onesComplementSum(Hdr));
  std::printf("shifted payload:");
  for (unsigned I = 0; I != PayloadLen / 4; ++I)
    std::printf(" %08X", Mem.Sdram[0x805 + I]);
  std::printf("\ncycles/packet: %llu -> %.0f Mbps at 233 MHz\n",
              static_cast<unsigned long long>(Run.Cycles),
              sim::throughputMbps(PayloadLen + 40, double(Run.Cycles)));
  return 0;
}
